//! Streaming-update vs. full-refresh economics (the crossover rule behind
//! `cacqr::stream::StreamingQr`'s auto-refresh decision).
//!
//! A rank-k row-append costs `O(kn² + n³)` — independent of the number of
//! rows `m` already folded into the factor — while re-running sequential
//! CholeskyQR2 over the retained history costs `O(mn² + n³)`. For small `k`
//! the update wins by roughly `m/k`; once a single delta carries a sizable
//! fraction of the total row count the refresh's drift-reset makes it the
//! better buy (see [`REFRESH_AMORTIZATION`] for the pricing).
//! [`crossover_width`] is the break-even `k`, and the streaming engine
//! consults [`append_beats_refresh`] before every delta.

use crate::cost::Cost;
use crate::cqr1d;

/// Cost of folding `k` appended rows into an `n × n` factor
/// (`dense::update::rank_k_append`): the `BᵀB` SYRK delta, the triangular
/// `RᵀR` accumulation, and the Cholesky re-factorization.
pub fn rank_k_append(n: usize, k: usize) -> Cost {
    let nf = n as f64;
    Cost::flops(dense_flops_syrk(k, n) + nf * nf * nf / 3.0 + nf * nf * nf / 3.0)
}

/// Cost of removing `k` rows by the hyperbolic-rotation sweep
/// (`dense::update::rank_k_downdate`): per row, a triangular solve plus a
/// rotation sweep over the upper triangle.
pub fn rank_k_downdate(n: usize, k: usize) -> Cost {
    Cost::flops(3.0 * k as f64 * n as f64 * n as f64)
}

/// Cost of a full sequential CQR2 refresh over the `m` retained rows — the
/// 1D model at `p = 1` (no communication terms survive a single rank).
pub fn refresh(m: usize, n: usize) -> Cost {
    cqr1d::cqr2_1d(m, n, 1)
}

/// Cost of maintaining the right-hand-side track `d = Aᵀb` through a rank-k
/// delta with `nrhs` right-hand sides (`dense::flops::rhs_update`): one
/// `n × k · k × nrhs` gemm folded into the same arrival as the factor
/// update.
pub fn rhs_update(n: usize, k: usize, nrhs: usize) -> Cost {
    Cost::flops(dense_flops_gemm(n, k, nrhs))
}

/// Cost of the warm semi-normal-equations solve `RᵀR·x = d`
/// (`dense::flops::stream_solve`): two triangular substitutions through the
/// live factor, `O(n²·nrhs)` — independent of the retained row count, which
/// is what makes per-arrival solves cheap next to any refactorization.
pub fn solve(n: usize, nrhs: usize) -> Cost {
    Cost::flops(2.0 * nrhs as f64 * n as f64 * n as f64)
}

/// Cost of the *corrected* semi-normal-equations solve over `m` retained
/// rows (`dense::flops::stream_solve_refined`): the plain solve plus one
/// refinement sweep — residual, projection, and a second pair of
/// substitutions.
pub fn solve_refined(m: usize, n: usize, nrhs: usize) -> Cost {
    let base = solve(n, nrhs).gamma;
    Cost::flops(2.0 * base + dense_flops_gemm(m, n, nrhs) + 2.0 * m as f64 * nrhs as f64 + dense_flops_gemm(n, m, nrhs))
}

/// Amortization credit a refresh is priced with in
/// [`append_beats_refresh`]. A raw flop comparison would *never* choose the
/// refresh: re-factoring also processes the k appended rows, so its cost
/// grows with `k` faster than the update's. But a refresh additionally
/// resets accumulated drift — value an update does not deliver — so its
/// cost is credited as amortizing over the drift headroom it restores.
/// A credit of 12 puts the break-even at `k ≈ m − n`: a delta about as wide
/// as the rows already retained re-factors, while every realistic streaming
/// width (`k ≪ m`) stays on the `O(kn² + n³)` update path.
pub const REFRESH_AMORTIZATION: f64 = 12.0;

/// Whether folding a `k`-row delta into an `n`-column factor is cheaper
/// than an (amortization-credited, see [`REFRESH_AMORTIZATION`]) full
/// refresh of the `m` retained rows. `m` counts the rows *after* the
/// append.
pub fn append_beats_refresh(m: usize, n: usize, k: usize) -> bool {
    rank_k_append(n, k).gamma < refresh(m, n).gamma / REFRESH_AMORTIZATION
}

/// The break-even update width: the smallest `k` for which a rank-k append
/// is no longer cheaper than a full refresh of `m` rows. Every `k` below
/// the returned value satisfies [`append_beats_refresh`].
pub fn crossover_width(m: usize, n: usize) -> usize {
    let nf = n as f64;
    let append_fixed = 2.0 * nf * nf * nf / 3.0;
    let guess = (refresh(m, n).gamma / REFRESH_AMORTIZATION - append_fixed) / (nf * nf);
    let mut k = if guess <= 1.0 { 1 } else { guess.ceil() as usize };
    // The closed form and the summed cost terms round differently in f64;
    // nudge onto the exact predicate boundary.
    while append_beats_refresh(m, n, k) {
        k += 1;
    }
    while k > 1 && !append_beats_refresh(m, n, k - 1) {
        k -= 1;
    }
    k
}

// Flop conventions duplicated from `dense::flops` (costmodel does not depend
// on `dense`; the equality is asserted in the tests below).
fn dense_flops_syrk(m: usize, n: usize) -> f64 {
    m as f64 * n as f64 * n as f64
}

fn dense_flops_gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventions_match_dense() {
        for &(n, k) in &[(8usize, 1usize), (64, 16), (128, 64), (31, 7)] {
            assert_eq!(rank_k_append(n, k).gamma, dense::flops::rank_k_append(n, k));
            assert_eq!(rank_k_downdate(n, k).gamma, dense::flops::rank_k_downdate(n, k));
        }
    }

    #[test]
    fn solve_conventions_match_dense() {
        for &(m, n, k, nrhs) in &[(512usize, 8usize, 1usize, 1usize), (8192, 128, 64, 4), (60, 16, 3, 2)] {
            assert_eq!(rhs_update(n, k, nrhs).gamma, dense::flops::rhs_update(n, k, nrhs));
            assert_eq!(solve(n, nrhs).gamma, dense::flops::stream_solve(n, nrhs));
            assert_eq!(
                solve_refined(m, n, nrhs).gamma,
                dense::flops::stream_solve_refined(m, n, nrhs)
            );
        }
    }

    #[test]
    fn streamed_solve_is_m_independent_and_cheap() {
        // The tentpole's economics: a warm solve costs O(n²·nrhs) while the
        // refactor-then-solve alternative pays the full O(mn²) refresh per
        // arrival — the wall-clock gate's ≥5x has orders of magnitude of
        // flop-count headroom.
        let (m, n) = (8192usize, 128usize);
        let streamed = rank_k_append(n, 64).gamma + solve_refined(m, n, 1).gamma;
        let refactor = refresh(m, n).gamma + solve(n, 1).gamma;
        assert!(refactor / streamed > 5.0, "ratio {}", refactor / streamed);
    }

    #[test]
    fn refresh_at_one_rank_is_communication_free() {
        let c = refresh(8192, 128);
        assert_eq!(c.alpha, 0.0);
        assert_eq!(c.beta, 0.0);
        assert!(c.gamma > 0.0);
    }

    #[test]
    fn small_appends_beat_refresh_at_the_headline_shape() {
        // The PR's perf-gate claim in cost-model terms: a rank-64 append at
        // 8192×128 does a small fraction of the refresh work.
        let (m, n) = (8192usize, 128usize);
        for k in [1usize, 16, 64] {
            assert!(append_beats_refresh(m + k, n, k), "k={k}");
        }
        let ratio = refresh(m, n).gamma / rank_k_append(n, 64).gamma;
        assert!(
            ratio > 5.0,
            "flop-count headroom for the 5x wall-clock gate: {ratio:.1}"
        );
    }

    #[test]
    fn crossover_is_consistent_with_the_predicate() {
        for &(m, n) in &[(4096usize, 64usize), (8192, 128), (512, 256)] {
            let kc = crossover_width(m, n);
            assert!(kc >= 1);
            if kc > 1 {
                assert!(append_beats_refresh(m, n, kc - 1), "below break-even at m={m} n={n}");
            }
            assert!(!append_beats_refresh(m, n, kc), "at break-even at m={m} n={n}");
        }
    }

    #[test]
    fn wide_factors_lower_the_relative_payoff() {
        // Appends pay an O(n³) refactorization regardless of k, so the
        // m/k-style advantage shrinks as n approaches m.
        let r_tall = refresh(8192, 64).gamma / rank_k_append(64, 16).gamma;
        let r_fat = refresh(512, 256).gamma / rank_k_append(256, 16).gamma;
        assert!(r_tall > r_fat);
    }
}
