//! Expected-cost model for the driver's escalation ladder (the economics
//! behind `cacqr::RetryPolicy`).
//!
//! CholeskyQR2 squares the condition number before the Cholesky step, so the
//! Gram matrix loses positive-definiteness once `κ(A)` approaches
//! `ε^{-1/2} ≈ 6.7·10⁷` in double precision. The driver handles that as a
//! normal event: a failed rung escalates to shifted CQR3 and finally to the
//! Householder baseline. This module prices that ladder *in expectation*, so
//! a planner can compare "run CQR2 and maybe pay for a retry" against "go
//! straight to the stable rung" for a workload of known conditioning.

use crate::cost::Cost;

/// Below this condition number a double-precision Cholesky of `AᵀA` is
/// reliably positive-definite and CQR2 never breaks down.
pub const BREAKDOWN_KAPPA_LO: f64 = 1.0e7;

/// Above this condition number the squared Gram matrix is numerically
/// indefinite and breakdown is (modelled as) certain.
pub const BREAKDOWN_KAPPA_HI: f64 = 1.0e8;

/// Modelled probability that a CholeskyQR2-family rung breaks down on input
/// of condition number `kappa`: `0` below [`BREAKDOWN_KAPPA_LO`], `1` above
/// [`BREAKDOWN_KAPPA_HI`], and linear in `log₁₀ κ` between them. The ramp
/// brackets `ε^{-1/2} ≈ 6.7·10⁷`, where the squared condition number
/// `κ² ≈ ε⁻¹` exhausts the mantissa — the regime the paper's §IV stability
/// experiments probe and the default `RetryPolicy` κ-gate sits in.
pub fn breakdown_probability(kappa: f64) -> f64 {
    if !kappa.is_finite() || kappa >= BREAKDOWN_KAPPA_HI {
        return 1.0;
    }
    if kappa <= BREAKDOWN_KAPPA_LO {
        return 0.0;
    }
    (kappa.log10() - BREAKDOWN_KAPPA_LO.log10()) / (BREAKDOWN_KAPPA_HI.log10() - BREAKDOWN_KAPPA_LO.log10())
}

/// Expected cost of walking an escalation ladder: rung `i` costs `costs[i]`
/// and fails with probability `p_fail[i]`; the walk pays for rung `i` only
/// if every earlier rung failed, so the expectation is
/// `Σᵢ costs[i] · Πⱼ<ᵢ p_fail[j]`. A terminal rung (Householder) should
/// carry `p_fail = 0.0`; a certain-breakdown rung `1.0`. Slices are walked
/// in ladder order and must have equal length.
pub fn ladder_expected_cost(costs: &[Cost], p_fail: &[f64]) -> Cost {
    assert_eq!(costs.len(), p_fail.len(), "one failure probability per ladder rung");
    let mut expected = Cost::ZERO;
    let mut reach = 1.0; // probability the walk reaches the current rung
    for (&cost, &p) in costs.iter().zip(p_fail) {
        expected += cost * reach;
        reach *= p.clamp(0.0, 1.0);
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_ramp_endpoints_and_monotonicity() {
        assert_eq!(breakdown_probability(1.0), 0.0);
        assert_eq!(breakdown_probability(BREAKDOWN_KAPPA_LO), 0.0);
        assert_eq!(breakdown_probability(BREAKDOWN_KAPPA_HI), 1.0);
        assert_eq!(breakdown_probability(1.0e12), 1.0);
        assert_eq!(breakdown_probability(f64::INFINITY), 1.0);
        // Geometric midpoint of the ramp in log10 space.
        let mid = breakdown_probability(10f64.powf(7.5));
        assert!((mid - 0.5).abs() < 1e-12, "mid = {mid}");
        let mut last = 0.0;
        for e in [70, 72, 75, 78, 80] {
            let p = breakdown_probability(10f64.powf(e as f64 / 10.0));
            assert!(p >= last, "non-monotone at 1e{}", e as f64 / 10.0);
            last = p;
        }
    }

    #[test]
    fn expected_cost_discounts_unreached_rungs() {
        let cqr2 = Cost::flops(100.0);
        let cqr3 = Cost::flops(150.0);
        let pgeqrf = Cost::flops(400.0);
        // Well-conditioned input: only the first rung is ever paid.
        let sure = ladder_expected_cost(&[cqr2, cqr3, pgeqrf], &[0.0, 0.0, 0.0]);
        assert_eq!(sure.gamma, 100.0);
        // Coin-flip breakdown on the CQR rungs.
        let risky = ladder_expected_cost(&[cqr2, cqr3, pgeqrf], &[0.5, 0.5, 0.0]);
        assert_eq!(risky.gamma, 100.0 + 0.5 * 150.0 + 0.25 * 400.0);
        // Certain breakdown pays the whole chain: the planner should have
        // gone straight to the stable rung.
        let doomed = ladder_expected_cost(&[cqr2, cqr3, pgeqrf], &[1.0, 1.0, 0.0]);
        assert_eq!(doomed.gamma, 650.0);
        assert!(doomed.gamma > pgeqrf.gamma);
    }

    #[test]
    fn empty_ladder_is_free_and_probabilities_are_clamped() {
        assert_eq!(ladder_expected_cost(&[], &[]), Cost::ZERO);
        let c = ladder_expected_cost(&[Cost::flops(1.0), Cost::flops(1.0)], &[7.0, 0.0]);
        // 7.0 clamps to 1.0: the second rung is reached with certainty.
        assert_eq!(c.gamma, 2.0);
    }
}
