//! General matrix-matrix multiplication.
//!
//! The workhorse is an `i-k-j` loop nest over row-major storage, which keeps
//! the innermost loop a unit-stride fused multiply-add over the rows of `B`
//! and `C` (auto-vectorizes well). Transposed operands are packed into
//! row-major temporaries first (a full `to_owned_transposed()` copy — fine
//! for an oracle; the `Blocked` backend instead absorbs transposes into its
//! panel packing).
//!
//! This module is the **naive reference path**: it backs
//! [`crate::backend::Naive`] and serves as the correctness oracle that the
//! blocked backend's property tests compare against. Performance-sensitive
//! callers should go through [`crate::backend::Backend`].

use crate::matrix::{MatMut, MatRef, Matrix};

/// Transpose flag for a gemm operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the operand's transpose.
    Yes,
}

/// `C ← α·op(A)·op(B) + β·C`.
///
/// Shapes: with `op(A)` of shape `m × k` and `op(B)` of shape `k × n`,
/// `C` must be `m × n`. Panics on mismatch.
pub fn gemm(alpha: f64, a: MatRef<'_>, ta: Trans, b: MatRef<'_>, tb: Trans, beta: f64, mut c: MatMut<'_>) {
    // Pack transposed operands so the core kernel only sees row-major data.
    let a_packed;
    let a_eff: MatRef<'_> = match ta {
        Trans::No => a,
        Trans::Yes => {
            a_packed = a.to_owned_transposed();
            a_packed.as_ref()
        }
    };
    let b_packed;
    let b_eff: MatRef<'_> = match tb {
        Trans::No => b,
        Trans::Yes => {
            b_packed = b.to_owned_transposed();
            b_packed.as_ref()
        }
    };

    let (m, k) = (a_eff.rows(), a_eff.cols());
    let n = b_eff.cols();
    assert_eq!(b_eff.rows(), k, "gemm inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");

    if beta != 1.0 {
        for i in 0..m {
            let row = c.row_mut(i);
            if beta == 0.0 {
                row.fill(0.0);
            } else {
                for v in row {
                    *v *= beta;
                }
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // Block over k to keep the active B panel in cache.
    const KB: usize = 256;
    for k0 in (0..k).step_by(KB) {
        let kb = KB.min(k - k0);
        for i in 0..m {
            let arow = &a_eff.row(i)[k0..k0 + kb];
            let crow = c.row_mut(i);
            for (kk, &aik) in arow.iter().enumerate() {
                let s = alpha * aik;
                if s == 0.0 {
                    continue;
                }
                let brow = b_eff.row(k0 + kk);
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += s * bv;
                }
            }
        }
    }
}

/// Convenience wrapper: returns `op(A)·op(B)` as a new matrix.
pub fn matmul(a: MatRef<'_>, ta: Trans, b: MatRef<'_>, tb: Trans) -> Matrix {
    let m = match ta {
        Trans::No => a.rows(),
        Trans::Yes => a.cols(),
    };
    let n = match tb {
        Trans::No => b.cols(),
        Trans::Yes => b.rows(),
    };
    let mut c = Matrix::zeros(m, n);
    gemm(1.0, a, ta, b, tb, 0.0, c.as_mut());
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs()))
    }

    #[test]
    fn matches_naive_nn() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 5 + j) as f64).sin());
        let b = Matrix::from_fn(5, 9, |i, j| ((i * 9 + j) as f64).cos());
        let c = matmul(a.as_ref(), Trans::No, b.as_ref(), Trans::No);
        assert!(close(&c, &naive(&a, &b), 1e-13));
    }

    #[test]
    fn matches_naive_all_transpose_combos() {
        let a = Matrix::from_fn(6, 4, |i, j| (i as f64 - j as f64) * 0.37);
        let b = Matrix::from_fn(6, 4, |i, j| (i as f64 + 2.0 * j as f64) * 0.11);
        // AᵀB : (4x6)(6x4)
        let c1 = matmul(a.as_ref(), Trans::Yes, b.as_ref(), Trans::No);
        assert!(close(&c1, &naive(&a.transposed(), &b), 1e-13));
        // ABᵀ : (6x4)(4x6)
        let c2 = matmul(a.as_ref(), Trans::No, b.as_ref(), Trans::Yes);
        assert!(close(&c2, &naive(&a, &b.transposed()), 1e-13));
        // AᵀBᵀ needs op(B) with rows matching op(A)'s cols: use a 4x6 B here.
        let b2 = Matrix::from_fn(4, 6, |i, j| (i as f64 * 0.5 - j as f64) * 0.19);
        let c3 = matmul(a.as_ref(), Trans::Yes, b2.as_ref(), Trans::Yes);
        assert!(close(&c3, &naive(&a.transposed(), &b2.transposed()), 1e-13));
    }

    #[test]
    fn alpha_beta_combine() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let b = Matrix::identity(3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 1.0);
        gemm(2.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 3.0, c.as_mut());
        // C = 2A + 3*ones
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.get(i, j), 2.0 * (i + j) as f64 + 3.0);
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_fn(2, 2, |_, _| f64::NAN);
        gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c.as_mut());
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    fn works_on_strided_views() {
        let big_a = Matrix::from_fn(8, 8, |i, j| (i * 8 + j) as f64);
        let big_b = Matrix::from_fn(8, 8, |i, j| ((i * 8 + j) as f64).sqrt());
        let a = big_a.view(2, 1, 3, 4);
        let b = big_b.view(0, 3, 4, 2);
        let c = matmul(a, Trans::No, b, Trans::No);
        let a_own = a.to_owned();
        let b_own = b.to_owned();
        assert!(close(&c, &naive(&a_own, &b_own), 1e-13));
    }

    #[test]
    fn empty_dims_are_ok() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let c = matmul(a.as_ref(), Trans::No, b.as_ref(), Trans::No);
        assert_eq!((c.rows(), c.cols()), (0, 2));
    }
}
