//! Owned row-major matrices and strided views.
//!
//! [`Matrix`] owns its storage. [`MatRef`] and [`MatMut`] are lightweight
//! (pointer, rows, cols, row-stride) views used by every kernel so that
//! blocked algorithms can operate on submatrices without copying. `MatMut`
//! supports disjoint splitting ([`MatMut::split_quad`] and friends), which is
//! what the recursive Cholesky/QR kernels are built on.

use std::fmt;
use std::marker::PhantomData;

/// An owned, row-major, dense `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of the (row, col) index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of the whole matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            ptr: self.data.as_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            _life: PhantomData,
        }
    }

    /// Mutable view of the whole matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_> {
        MatMut {
            ptr: self.data.as_mut_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            _life: PhantomData,
        }
    }

    /// Immutable view of the `nr × nc` submatrix anchored at `(r0, c0)`.
    pub fn view(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'_> {
        self.as_ref().sub(r0, c0, nr, nc)
    }

    /// Mutable view of the `nr × nc` submatrix anchored at `(r0, c0)`.
    pub fn view_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'_> {
        self.as_mut().sub(r0, c0, nr, nc)
    }

    /// Returns a newly allocated transpose.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Copies the contents of `src` (same shape) into `self`.
    pub fn copy_from(&mut self, src: MatRef<'_>) {
        self.as_mut().copy_from(src);
    }

    /// Materializes a view into an owned matrix.
    pub fn from_view(v: MatRef<'_>) -> Matrix {
        let mut m = Matrix::zeros(v.rows(), v.cols());
        m.as_mut().copy_from(v);
        m
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let rmax = self.rows.min(8);
        let cmax = self.cols.min(8);
        for i in 0..rmax {
            write!(f, "  ")?;
            for j in 0..cmax {
                write!(f, "{:>12.5e} ", self.get(i, j))?;
            }
            writeln!(f, "{}", if self.cols > cmax { "..." } else { "" })?;
        }
        if self.rows > rmax {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Immutable strided view into matrix storage.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    ptr: *const f64,
    rows: usize,
    cols: usize,
    stride: usize,
    _life: PhantomData<&'a f64>,
}

// SAFETY: MatRef is a shared, read-only view; aliasing reads are fine.
unsafe impl Send for MatRef<'_> {}
unsafe impl Sync for MatRef<'_> {}

impl<'a> MatRef<'a> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(i * self.stride + j) }
    }

    /// Row `i` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        debug_assert!(i < self.rows);
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Sub-view of shape `nr × nc` anchored at `(r0, c0)`.
    pub fn sub(self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'a> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "sub view out of bounds");
        MatRef {
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows: nr,
            cols: nc,
            stride: self.stride,
            _life: PhantomData,
        }
    }

    /// Copies this view into a fresh owned matrix.
    pub fn to_owned(self) -> Matrix {
        Matrix::from_view(self)
    }

    /// Copies the transpose of this view into a fresh owned matrix.
    pub fn to_owned_transposed(self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let r = self.row(i);
            for j in 0..self.cols {
                t.data[j * self.rows + i] = r[j];
            }
        }
        t
    }
}

/// Mutable strided view into matrix storage.
///
/// Built on a raw pointer so that disjoint sub-views can coexist (see
/// [`MatMut::split_quad`]); all splitting APIs enforce disjointness.
pub struct MatMut<'a> {
    ptr: *mut f64,
    rows: usize,
    cols: usize,
    stride: usize,
    _life: PhantomData<&'a mut f64>,
}

// SAFETY: MatMut is an exclusive view (&mut-like); ownership moves with it.
unsafe impl Send for MatMut<'_> {}

impl<'a> MatMut<'a> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(i * self.stride + j) }
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(i * self.stride + j) = v }
    }

    /// Row `i` as a mutable slice of length `cols`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Row `i` as a shared slice of length `cols`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Base pointer of the view (row-major, `stride()` elements between
    /// consecutive rows). For splitting schemes the built-in `split_*`
    /// helpers cannot express (e.g. the blocked backend's dynamic
    /// block-parallel partition).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.ptr
    }

    /// Reassembles a view from raw parts.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads and writes of every element addressed
    /// by `(rows, cols, stride)` for the lifetime `'a`, and the caller must
    /// guarantee no other live view aliases those elements mutably.
    #[inline]
    pub unsafe fn from_raw_parts(ptr: *mut f64, rows: usize, cols: usize, stride: usize) -> MatMut<'a> {
        MatMut {
            ptr,
            rows,
            cols,
            stride,
            _life: PhantomData,
        }
    }

    /// Reborrows as an immutable view.
    #[inline]
    pub fn rb(&self) -> MatRef<'_> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _life: PhantomData,
        }
    }

    /// Reborrows as a shorter-lived mutable view.
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _life: PhantomData,
        }
    }

    /// Consumes the view, returning the `nr × nc` sub-view at `(r0, c0)`.
    pub fn sub(self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'a> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "sub view out of bounds");
        MatMut {
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows: nr,
            cols: nc,
            stride: self.stride,
            _life: PhantomData,
        }
    }

    /// Splits into (top, bottom) at row `r`.
    pub fn split_rows(self, r: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(r <= self.rows);
        let top = MatMut {
            ptr: self.ptr,
            rows: r,
            cols: self.cols,
            stride: self.stride,
            _life: PhantomData,
        };
        let bot = MatMut {
            ptr: unsafe { self.ptr.add(r * self.stride) },
            rows: self.rows - r,
            cols: self.cols,
            stride: self.stride,
            _life: PhantomData,
        };
        (top, bot)
    }

    /// Splits into (left, right) at column `c`.
    pub fn split_cols(self, c: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(c <= self.cols);
        let left = MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: c,
            stride: self.stride,
            _life: PhantomData,
        };
        let right = MatMut {
            ptr: unsafe { self.ptr.add(c) },
            rows: self.rows,
            cols: self.cols - c,
            stride: self.stride,
            _life: PhantomData,
        };
        (left, right)
    }

    /// Splits into four disjoint quadrants at `(r, c)`:
    /// `(A11, A12, A21, A22)`.
    pub fn split_quad(self, r: usize, c: usize) -> (MatMut<'a>, MatMut<'a>, MatMut<'a>, MatMut<'a>) {
        let (top, bot) = self.split_rows(r);
        let (a11, a12) = top.split_cols(c);
        let (a21, a22) = bot.split_cols(c);
        (a11, a12, a21, a22)
    }

    /// Copies the contents of `src` (same shape) into this view.
    pub fn copy_from(&mut self, src: MatRef<'_>) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows(), src.cols()),
            "copy_from shape mismatch"
        );
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(src.row(i));
        }
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f64) {
        for i in 0..self.rows {
            self.row_mut(i).fill(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.as_ref().at(1, 2), 12.0);
    }

    #[test]
    fn identity_is_identity() {
        let id = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn views_are_strided() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let v = m.view(1, 1, 2, 2);
        assert_eq!(v.at(0, 0), 5.0);
        assert_eq!(v.at(1, 1), 10.0);
        assert_eq!(v.row(1), &[9.0, 10.0]);
    }

    #[test]
    fn split_quad_disjoint_writes() {
        let mut m = Matrix::zeros(4, 4);
        let (mut a11, mut a12, mut a21, mut a22) = m.as_mut().split_quad(2, 2);
        a11.fill(1.0);
        a12.fill(2.0);
        a21.fill(3.0);
        a22.fill(4.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 3), 2.0);
        assert_eq!(m.get(3, 0), 3.0);
        assert_eq!(m.get(3, 3), 4.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.as_ref().to_owned_transposed(), m.transposed());
    }

    #[test]
    fn copy_from_view() {
        let src = Matrix::from_fn(2, 2, |i, j| (i + j) as f64 + 0.5);
        let mut dst = Matrix::zeros(4, 4);
        dst.view_mut(1, 1, 2, 2).copy_from(src.as_ref());
        assert_eq!(dst.get(1, 1), 0.5);
        assert_eq!(dst.get(2, 2), 2.5);
        assert_eq!(dst.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sub_view_bounds_checked() {
        let m = Matrix::zeros(3, 3);
        let _ = m.view(1, 1, 3, 3);
    }
}
