//! Rank-k row-append / row-downdate kernels for an upper-triangular factor.
//!
//! These are the dense building blocks of the streaming QR subsystem
//! (`cacqr::stream`). Both operate on the `R` factor alone, exploiting the
//! CholeskyQR identity that `R` is determined by the Gram matrix:
//!
//! * [`rank_k_append`] — given `R` with `RᵀR = AᵀA` and a block `B` of `k`
//!   new rows, replaces `R` by `R'` with `R'ᵀR' = RᵀR + BᵀB`. Computed as
//!   the Cholesky factor of the updated Gram matrix: the `BᵀB` delta comes
//!   from the symmetry-aware SIMD SYRK, `RᵀR` is accumulated over the upper
//!   triangle's rows, and the re-factorization runs through the
//!   workspace-backed blocked [`potrf_ws`]. Cost
//!   `O(kn² + n³)` — independent of the row count `m` already folded in.
//! * [`rank_k_downdate`] — removes `k` previously appended rows by the
//!   LINPACK `dchdd` hyperbolic-rotation sweep. Downdating is only
//!   well-posed while the shrunk Gram matrix stays positive definite; the
//!   kernel reports the violation as a typed
//!   [`UpdateError::DowndateIndefinite`] instead of producing a garbage
//!   factor.
//!
//! Both kernels are **transactional** (on error `r` is left untouched),
//! **deterministic** (fixed sequential loop orders; the SYRK delta is the
//! thread-count-invariant blocked kernel), and **allocation-free when warm**
//! (all scratch drawn from the caller's [`Workspace`] arena).

use crate::backend::Backend;
use crate::cholesky::{potrf_ws, CholeskyError};
use crate::matrix::{MatMut, MatRef};
use crate::workspace::Workspace;

/// Typed failure of a rank-k factor update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UpdateError {
    /// The update block's column count does not match the factor's order.
    ShapeMismatch {
        /// Order of the square factor `R`.
        order: usize,
        /// Rows of the offending update block.
        rows: usize,
        /// Columns of the offending update block.
        cols: usize,
    },
    /// The appended Gram matrix lost positive definiteness during
    /// re-factorization (numerically rank-deficient row set).
    NotPositiveDefinite(CholeskyError),
    /// Downdating by row `row` of the block would make the Gram matrix
    /// indefinite: the rows being removed are not (numerically) contained
    /// in the factored row set.
    DowndateIndefinite {
        /// Index within the update block of the first offending row.
        row: usize,
        /// The hyperbolic pivot `α² = 1 − ‖R⁻ᵀx‖²` that should have been
        /// positive. The more negative, the further the row is from the
        /// factored set.
        deficiency: f64,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::ShapeMismatch { order, rows, cols } => write!(
                f,
                "update block is {rows}x{cols} but the factor is {order}x{order} \
                 (column counts must match)"
            ),
            UpdateError::NotPositiveDefinite(e) => {
                write!(f, "appended Gram matrix is not positive definite: {e}")
            }
            UpdateError::DowndateIndefinite { row, deficiency } => write!(
                f,
                "downdate row {row} leaves the factor indefinite (alpha^2 = {deficiency:.3e}); \
                 the removed rows are not part of the factored row set"
            ),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::NotPositiveDefinite(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CholeskyError> for UpdateError {
    fn from(e: CholeskyError) -> Self {
        UpdateError::NotPositiveDefinite(e)
    }
}

fn check_block(order: usize, b: MatRef<'_>) -> Result<(), UpdateError> {
    if b.cols() != order {
        return Err(UpdateError::ShapeMismatch {
            order,
            rows: b.rows(),
            cols: b.cols(),
        });
    }
    Ok(())
}

/// Appends `k = b.rows()` rows to the factorization: replaces the upper
/// triangular `r` by `R'` with `R'ᵀR' = RᵀR + BᵀB`.
///
/// The Gram delta `BᵀB` is computed by the backend's blocked SYRK, `RᵀR` is
/// accumulated into the lower triangle (the only half the blocked Cholesky
/// reads), and the sum is re-factored with [`potrf_ws`]. On success `r`
/// holds `R'` (upper triangular, positive diagonal); on error `r` is left
/// **unchanged**. All scratch comes from `ws` — warm calls perform zero
/// heap allocations.
pub fn rank_k_append(
    mut r: MatMut<'_>,
    b: MatRef<'_>,
    backend: &dyn Backend,
    ws: &mut Workspace,
) -> Result<(), UpdateError> {
    let n = r.rows();
    assert_eq!(r.cols(), n, "factor must be square");
    check_block(n, b)?;
    if b.rows() == 0 {
        return Ok(());
    }
    // G ← BᵀB (full, symmetric), then G_lower += RᵀR. Only the lower
    // triangle is accumulated: the blocked Cholesky below never reads the
    // strict upper half (its trailing gemm writes both halves but each
    // output element depends only on its own input element).
    let mut g = ws.take_matrix_stale(n, n);
    backend.syrk_into(b, g.as_mut());
    {
        let mut gm = g.as_mut();
        for l in 0..n {
            let rl = r.row(l);
            for i in l..n {
                let v = rl[i];
                let grow = gm.row_mut(i);
                for j in l..=i {
                    grow[j] += v * rl[j];
                }
            }
        }
    }
    match potrf_ws(g.as_mut(), backend, ws) {
        Ok(()) => {
            // R' = Lᵀ, written back transactionally only on success.
            let gl = g.as_ref();
            for i in 0..n {
                let row = r.row_mut(i);
                for v in &mut row[..i] {
                    *v = 0.0;
                }
                for j in i..n {
                    row[j] = gl.at(j, i);
                }
            }
            ws.recycle(g);
            Ok(())
        }
        Err(e) => {
            ws.recycle(g);
            Err(e.into())
        }
    }
}

/// Removes `k = b.rows()` previously appended rows from the factorization:
/// replaces `r` by `R'` with `R'ᵀR' = RᵀR − BᵀB`, via the LINPACK `dchdd`
/// hyperbolic-rotation sweep (one sweep per removed row).
///
/// Returns the smallest hyperbolic pivot `α² = 1 − ‖R⁻ᵀx‖²` observed across
/// the block — a direct conditioning signal: `1/α²` bounds the error
/// amplification of the sweep, and `α² ≤ 0` means the downdated Gram matrix
/// is no longer positive definite, reported as
/// [`UpdateError::DowndateIndefinite`]. The sweep runs on an arena copy and
/// commits only on success, so on error `r` is left **unchanged** even when
/// an earlier row of the block was already applied.
pub fn rank_k_downdate(mut r: MatMut<'_>, b: MatRef<'_>, ws: &mut Workspace) -> Result<f64, UpdateError> {
    let n = r.rows();
    assert_eq!(r.cols(), n, "factor must be square");
    check_block(n, b)?;
    if b.rows() == 0 {
        return Ok(1.0);
    }
    let mut work = ws.take_copy(r.rb());
    let mut a = ws.take_vec(n);
    let mut c = ws.take_vec(n);
    let mut s = ws.take_vec(n);
    let mut min_alpha_sq = 1.0_f64;
    let mut failure = None;
    for row in 0..b.rows() {
        let x = b.row(row);
        // Solve Rᵀa = x by forward substitution (Rᵀ is lower triangular).
        for i in 0..n {
            let mut t = x[i];
            for k in 0..i {
                t -= work.get(k, i) * a[k];
            }
            a[i] = t / work.get(i, i);
        }
        let norm_sq: f64 = a[..n].iter().map(|v| v * v).sum();
        let alpha_sq = 1.0 - norm_sq;
        // Also catches NaN/−∞ from a singular diagonal above.
        if alpha_sq.is_nan() || alpha_sq <= 0.0 {
            failure = Some(UpdateError::DowndateIndefinite {
                row,
                deficiency: alpha_sq,
            });
            break;
        }
        min_alpha_sq = min_alpha_sq.min(alpha_sq);
        // Generate the hyperbolic rotations from the bottom up…
        let mut alpha = alpha_sq.sqrt();
        for i in (0..n).rev() {
            let scale = alpha + a[i].abs();
            let aa = alpha / scale;
            let bb = a[i] / scale;
            let nrm = (aa * aa + bb * bb).sqrt();
            c[i] = aa / nrm;
            s[i] = bb / nrm;
            alpha = scale * nrm;
        }
        // …and apply them column by column (LINPACK dchdd order).
        for j in 0..n {
            let mut xx = 0.0;
            for i in (0..=j).rev() {
                let t = c[i] * xx + s[i] * work.get(i, j);
                work.set(i, j, c[i] * work.get(i, j) - s[i] * xx);
                xx = t;
            }
        }
    }
    let out = match failure {
        Some(e) => Err(e),
        None => {
            // Normalize to a positive diagonal (the CholeskyQR convention;
            // rotations can flip signs) and commit.
            for i in 0..n {
                if work.get(i, i) < 0.0 {
                    let mut wm = work.as_mut();
                    let row = wm.row_mut(i);
                    for v in &mut row[i..] {
                        *v = -*v;
                    }
                }
            }
            r.copy_from(work.as_ref());
            Ok(min_alpha_sq)
        }
    };
    ws.recycle_vec(s);
    ws.recycle_vec(c);
    ws.recycle_vec(a);
    ws.recycle(work);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::cholesky::potrf;
    use crate::matrix::Matrix;
    use crate::random::{gaussian_matrix, well_conditioned};
    use crate::syrk::syrk;

    /// Upper factor of AᵀA, the CholeskyQR way: R = chol(AᵀA)ᵀ.
    fn r_of(a: &Matrix) -> Matrix {
        let mut g = syrk(a.as_ref());
        potrf(g.as_mut()).expect("well-conditioned Gram");
        g.transposed()
    }

    fn concat(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols());
        let mut out = Matrix::zeros(a.rows() + b.rows(), a.cols());
        out.view_mut(0, 0, a.rows(), a.cols()).copy_from(a.as_ref());
        out.view_mut(a.rows(), 0, b.rows(), b.cols()).copy_from(b.as_ref());
        out
    }

    fn assert_close(got: &Matrix, want: &Matrix, tol: f64) {
        for (u, v) in got.data().iter().zip(want.data()) {
            assert!((u - v).abs() < tol * (1.0 + v.abs()), "{u} vs {v}");
        }
    }

    #[test]
    fn append_matches_from_scratch_factor() {
        for &(m, n, k) in &[(96, 24, 8), (40, 40, 1), (200, 31, 64)] {
            let a = well_conditioned(m, n, 11);
            let b = gaussian_matrix(k, n, 17);
            let mut r = r_of(&a);
            let backend = BackendKind::default_kind().get();
            let mut ws = Workspace::new();
            rank_k_append(r.as_mut(), b.as_ref(), backend, &mut ws).unwrap();
            let want = r_of(&concat(&a, &b));
            assert_close(&r, &want, 1e-9);
            assert_eq!(ws.takes(), ws.recycles(), "arena stays balanced");
        }
    }

    #[test]
    fn append_is_warm_allocation_free_across_block_sizes() {
        // n = 96 exercises the blocked potrf path (panel copies from the
        // arena), n = 32 the unblocked one.
        for &n in &[32usize, 96] {
            let a = well_conditioned(2 * n, n, 5);
            let b = gaussian_matrix(8, n, 6);
            let mut r = r_of(&a);
            let backend = BackendKind::default_kind().get();
            let mut ws = Workspace::new();
            rank_k_append(r.as_mut(), b.as_ref(), backend, &mut ws).unwrap();
            let cold = ws.heap_allocations();
            for _ in 0..3 {
                rank_k_append(r.as_mut(), b.as_ref(), backend, &mut ws).unwrap();
            }
            assert_eq!(ws.heap_allocations(), cold, "warm appends draw from the arena (n={n})");
        }
    }

    #[test]
    fn downdate_undoes_append() {
        let (m, n, k) = (128, 24, 8);
        let a = well_conditioned(m, n, 3);
        let b = gaussian_matrix(k, n, 4);
        let r0 = r_of(&a);
        let mut r = r0.clone();
        let backend = BackendKind::default_kind().get();
        let mut ws = Workspace::new();
        rank_k_append(r.as_mut(), b.as_ref(), backend, &mut ws).unwrap();
        let alpha_sq = rank_k_downdate(r.as_mut(), b.as_ref(), &mut ws).unwrap();
        assert!(alpha_sq > 0.0 && alpha_sq <= 1.0, "pivot {alpha_sq}");
        assert_close(&r, &r0, 1e-8);
        assert_eq!(ws.takes(), ws.recycles());
    }

    #[test]
    fn downdate_of_foreign_rows_is_indefinite_and_transactional() {
        let n = 16;
        let a = well_conditioned(64, n, 9);
        let r0 = r_of(&a);
        let mut r = r0.clone();
        // A row far outside the factored set: norm much larger than any
        // column of A.
        let huge = Matrix::from_fn(1, n, |_, j| 1e6 * (j + 1) as f64);
        let mut ws = Workspace::new();
        let err = rank_k_downdate(r.as_mut(), huge.as_ref(), &mut ws).unwrap_err();
        match err {
            UpdateError::DowndateIndefinite { row, deficiency } => {
                assert_eq!(row, 0);
                assert!(deficiency <= 0.0);
            }
            other => panic!("expected DowndateIndefinite, got {other:?}"),
        }
        assert_eq!(r.data(), r0.data(), "failed downdate must not touch R");
        assert_eq!(ws.takes(), ws.recycles(), "error path recycles its scratch");
    }

    #[test]
    fn multi_row_downdate_failure_rolls_back_earlier_rows() {
        let n = 12;
        let a = well_conditioned(48, n, 21);
        let b = gaussian_matrix(2, n, 22);
        let mut r = r_of(&a);
        let backend = BackendKind::default_kind().get();
        let mut ws = Workspace::new();
        rank_k_append(r.as_mut(), b.as_ref(), backend, &mut ws).unwrap();
        let before = r.clone();
        // First row of the block is genuinely removable, second is foreign:
        // the sweep applies row 0 to its scratch copy, then must roll back.
        let mut block = Matrix::zeros(2, n);
        block.view_mut(0, 0, 1, n).copy_from(b.view(0, 0, 1, n));
        for j in 0..n {
            block.set(1, j, 1e7);
        }
        let err = rank_k_downdate(r.as_mut(), block.as_ref(), &mut ws).unwrap_err();
        assert!(matches!(err, UpdateError::DowndateIndefinite { row: 1, .. }), "{err:?}");
        assert_eq!(r.data(), before.data(), "partial sweep must not leak into R");
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let mut r = Matrix::identity(8);
        let b = Matrix::zeros(3, 5);
        let backend = BackendKind::default_kind().get();
        let mut ws = Workspace::new();
        let err = rank_k_append(r.as_mut(), b.as_ref(), backend, &mut ws).unwrap_err();
        assert_eq!(
            err,
            UpdateError::ShapeMismatch {
                order: 8,
                rows: 3,
                cols: 5
            }
        );
        let err = rank_k_downdate(r.as_mut(), b.as_ref(), &mut ws).unwrap_err();
        assert!(matches!(err, UpdateError::ShapeMismatch { .. }));
    }

    #[test]
    fn append_failure_leaves_factor_untouched() {
        // A singular "factor" makes the accumulated Gram matrix exactly
        // rank-deficient, so re-factorization must fail …
        let n = 8;
        let mut r = Matrix::zeros(n, n);
        for i in 1..n {
            r.set(i, i, 1.0);
        }
        r.set(0, 3, 2.5);
        let before = r.clone();
        let b = Matrix::zeros(2, n);
        let backend = BackendKind::default_kind().get();
        let mut ws = Workspace::new();
        let err = rank_k_append(r.as_mut(), b.as_ref(), backend, &mut ws).unwrap_err();
        assert!(matches!(err, UpdateError::NotPositiveDefinite(_)), "{err:?}");
        // … and the original factor survives bitwise.
        assert_eq!(r.data(), before.data());
        assert_eq!(ws.takes(), ws.recycles());
    }

    #[test]
    fn empty_blocks_are_no_ops() {
        let a = well_conditioned(32, 8, 2);
        let mut r = r_of(&a);
        let before = r.clone();
        let b = Matrix::zeros(0, 8);
        let backend = BackendKind::default_kind().get();
        let mut ws = Workspace::new();
        rank_k_append(r.as_mut(), b.as_ref(), backend, &mut ws).unwrap();
        assert_eq!(rank_k_downdate(r.as_mut(), b.as_ref(), &mut ws).unwrap(), 1.0);
        assert_eq!(r.data(), before.data());
    }
}
