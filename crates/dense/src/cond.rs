//! Cheap triangular condition estimation (LAPACK `xTRCON` analogue).
//!
//! The escalation ladder needs to know, *after* a CQR2-family factorization
//! nominally succeeds, whether the computed `R` is trustworthy — a Gram
//! matrix with κ(A)² ≈ 1/ε can pass Cholesky yet leave `R` useless. The
//! full answer (Jacobi SVD in [`crate::svd`]) costs O(n³) with a large
//! constant; the standard cheap answer is Hager–Higham 1-norm estimation:
//! `κ₁(R) = ‖R‖₁ · ‖R⁻¹‖₁` with `‖R⁻¹‖₁` estimated from a handful of
//! triangular solves with `R` and `Rᵀ` — O(n²) per iteration, at most five
//! iterations, and within a small factor of the true norm in practice
//! (exact on the matrices the convergence test accepts).

use crate::matrix::MatRef;
use crate::workspace::{recycle_local_vec, take_local_vec};

/// Estimate the 1-norm condition number `κ₁(R)` of an upper-triangular
/// `n × n` matrix. Returns `f64::INFINITY` for exactly singular or
/// non-finite triangles; never errors. Cost: O(n²), no heap allocation
/// once the thread-local workspace is warm.
pub fn cond_estimate(r: MatRef<'_>) -> f64 {
    let n = r.cols();
    assert_eq!(r.rows(), n, "cond_estimate expects a square triangle");
    if n == 0 {
        return 1.0;
    }
    for i in 0..n {
        let d = r.at(i, i);
        if d == 0.0 || !d.is_finite() {
            return f64::INFINITY;
        }
    }
    let norm = one_norm_upper(r);
    let inv_norm = inverse_one_norm_estimate(r);
    let kappa = norm * inv_norm;
    if kappa.is_finite() {
        kappa
    } else {
        f64::INFINITY
    }
}

/// Exact `‖R‖₁` (max absolute column sum) over the upper triangle.
fn one_norm_upper(r: MatRef<'_>) -> f64 {
    let n = r.cols();
    let mut best = 0.0f64;
    for j in 0..n {
        let mut sum = 0.0;
        for i in 0..=j {
            sum += r.at(i, j).abs();
        }
        best = best.max(sum);
    }
    best
}

/// Hager's power-method-on-the-dual estimate of `‖R⁻¹‖₁`.
fn inverse_one_norm_estimate(r: MatRef<'_>) -> f64 {
    let n = r.cols();
    let mut x = take_local_vec(n);
    let mut z = take_local_vec(n);
    x.clear();
    x.resize(n, 1.0 / n as f64);
    z.clear();
    z.resize(n, 0.0);

    let mut est = 0.0f64;
    for _ in 0..5 {
        // y = R⁻¹ x (overwrites x).
        solve_upper(r, &mut x);
        let y_norm: f64 = x.iter().map(|v| v.abs()).sum();
        est = est.max(y_norm);
        if !y_norm.is_finite() {
            est = f64::INFINITY;
            break;
        }
        // z = R⁻ᵀ sign(y).
        for (zi, yi) in z.iter_mut().zip(x.iter()) {
            *zi = if *yi >= 0.0 { 1.0 } else { -1.0 };
        }
        solve_upper_trans(r, &mut z);
        let (mut j_best, mut z_inf) = (0usize, 0.0f64);
        for (j, v) in z.iter().enumerate() {
            if v.abs() > z_inf {
                z_inf = v.abs();
                j_best = j;
            }
        }
        // Converged when the dual certificate stops improving.
        let zx: f64 = z.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        if z_inf <= zx.abs() {
            break;
        }
        x.clear();
        x.resize(n, 0.0);
        x[j_best] = 1.0;
    }
    recycle_local_vec(x);
    recycle_local_vec(z);
    est
}

/// In-place back substitution: `x ← R⁻¹ x` for upper-triangular `R`.
fn solve_upper(r: MatRef<'_>, x: &mut [f64]) {
    let n = x.len();
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= r.at(i, j) * x[j];
        }
        x[i] = s / r.at(i, i);
    }
}

/// In-place forward substitution: `x ← R⁻ᵀ x` for upper-triangular `R`.
fn solve_upper_trans(r: MatRef<'_>, x: &mut [f64]) {
    let n = x.len();
    for i in 0..n {
        let mut s = x[i];
        for j in 0..i {
            s -= r.at(j, i) * x[j];
        }
        x[i] = s / r.at(i, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn identity_and_diagonal_triangles_are_exact() {
        let eye = Matrix::identity(8);
        assert!((cond_estimate(eye.as_ref()) - 1.0).abs() < 1e-12);

        // diag(1, 10, 100): κ₁ = 100 exactly.
        let d = Matrix::from_fn(3, 3, |i, j| if i == j { 10f64.powi(i as i32) } else { 0.0 });
        let est = cond_estimate(d.as_ref());
        assert!((est - 100.0).abs() / 100.0 < 1e-12, "est = {est}");
    }

    #[test]
    fn estimate_tracks_the_r_factor_of_a_prescribed_condition_matrix() {
        for &target in &[1e2, 1e5, 1e8] {
            let a = crate::random::matrix_with_condition(96, 12, target, 7);
            let qr = crate::householder_qr(&a);
            let mut r = Matrix::zeros(12, 12);
            for i in 0..12 {
                for j in i..12 {
                    r.set(i, j, qr.packed.get(i, j));
                }
            }
            let est = cond_estimate(r.as_ref());
            // κ₁ vs κ₂ differ by at most n; the estimator itself is exact
            // or a mild underestimate. Accept an order of magnitude band.
            assert!(
                est > target / 20.0 && est < target * 20.0,
                "target κ {target:e}, estimate {est:e}"
            );
        }
    }

    #[test]
    fn singular_and_non_finite_triangles_report_infinity() {
        let mut r = Matrix::identity(4);
        r.set(2, 2, 0.0);
        assert_eq!(cond_estimate(r.as_ref()), f64::INFINITY);
        r.set(2, 2, f64::NAN);
        assert_eq!(cond_estimate(r.as_ref()), f64::INFINITY);
    }
}
