//! Blocked Householder QR.
//!
//! This is the sequential reference factorization (what the paper calls
//! "Householder QR", the accuracy gold standard for CQR2), and the node-local
//! kernel under the ScaLAPACK-`PGEQRF` baseline: the `baseline` crate reuses
//! [`panel_qr`] (factor + compact-WY `T`) and [`apply_block_reflector`] for
//! its distributed panel/trailing-update schedule.
//!
//! Conventions follow LAPACK `dgeqrf`: reflectors are `H_j = I − τ_j v_j v_jᵀ`
//! with `v_j[j] = 1` implicit, stored below the diagonal; `R` is stored on and
//! above the diagonal.

use crate::backend::{Backend, BackendKind};
use crate::blas1::nrm2;
use crate::gemm::Trans;
use crate::matrix::{MatMut, MatRef, Matrix};

/// Result of a Householder factorization: packed `V\R` storage plus the
/// scalar reflector coefficients.
#[derive(Clone, Debug)]
pub struct QrFactors {
    /// `m × n` packed storage: `R` on/above the diagonal, reflector vectors
    /// (unit diagonal implicit) below it.
    pub packed: Matrix,
    /// The `τ` coefficients, one per reflector (length `min(m, n)`).
    pub tau: Vec<f64>,
}

impl QrFactors {
    /// Extracts the `n × n` upper-triangular factor `R` (for `m ≥ n`).
    pub fn r(&self) -> Matrix {
        let n = self.packed.cols();
        let k = n.min(self.packed.rows());
        let mut r = Matrix::zeros(k, n);
        for i in 0..k {
            for j in i..n {
                r.set(i, j, self.packed.get(i, j));
            }
        }
        r
    }
}

/// Generates one Householder reflector in place.
///
/// On entry `x` is the column to annihilate (length ≥ 1). On exit `x[0]` is
/// the resulting diagonal entry of `R`, `x[1..]` holds the reflector tail
/// (unit head implicit), and the returned value is `τ`.
fn make_reflector(x: &mut [f64]) -> f64 {
    let alpha = x[0];
    let xnorm = nrm2(&x[1..]);
    if xnorm == 0.0 {
        // Column already upper triangular; H = I.
        return 0.0;
    }
    let norm = (alpha * alpha + xnorm * xnorm).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in &mut x[1..] {
        *v *= scale;
    }
    x[0] = beta;
    tau
}

/// Applies `H = I − τ v vᵀ` from the left to `c` (`v` has implicit unit head).
fn apply_reflector(v_tail: &[f64], tau: f64, mut c: MatMut<'_>) {
    if tau == 0.0 {
        return;
    }
    let n = c.cols();
    // w = vᵀ C  (v = [1, v_tail])
    let mut w = vec![0.0f64; n];
    w.copy_from_slice(c.row(0));
    for (i, &vi) in v_tail.iter().enumerate() {
        let row = c.row(i + 1);
        for (wj, &cj) in w.iter_mut().zip(row) {
            *wj += vi * cj;
        }
    }
    // C -= τ v wᵀ
    {
        let r0 = c.row_mut(0);
        for (cj, &wj) in r0.iter_mut().zip(&w) {
            *cj -= tau * wj;
        }
    }
    for (i, &vi) in v_tail.iter().enumerate() {
        let s = tau * vi;
        let row = c.row_mut(i + 1);
        for (cj, &wj) in row.iter_mut().zip(&w) {
            *cj -= s * wj;
        }
    }
}

/// Unblocked Householder QR on a view, in place; returns `τ` values.
fn qr_unblocked(mut a: MatMut<'_>) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    let k = m.min(n);
    let mut taus = Vec::with_capacity(k);
    let mut col = Vec::new();
    for j in 0..k {
        // Gather column j (rows j..m) into a contiguous buffer.
        col.clear();
        col.extend((j..m).map(|i| a.at(i, j)));
        let tau = make_reflector(&mut col);
        // Scatter back.
        for (off, &v) in col.iter().enumerate() {
            a.set(j + off, j, v);
        }
        taus.push(tau);
        if j + 1 < n {
            let trailing = a.rb_mut().sub(j, j + 1, m - j, n - j - 1);
            apply_reflector(&col[1..], tau, trailing);
        }
    }
    taus
}

/// Forms the compact-WY triangular factor `T` (`k × k`, upper triangular)
/// such that `H_0 H_1 ⋯ H_{k−1} = I − V T Vᵀ`, from packed reflectors `v`
/// (an `m × k` unit-lower-trapezoidal view) and their `τ` values.
///
/// LAPACK `dlarft` forward/columnwise convention.
pub fn larft(v: MatRef<'_>, tau: &[f64]) -> Matrix {
    let k = v.cols();
    let m = v.rows();
    let mut t = Matrix::zeros(k, k);
    for j in 0..k {
        let tj = tau[j];
        t.set(j, j, tj);
        if tj == 0.0 {
            continue;
        }
        if j > 0 {
            // w = Vᵀ[0..j] v_j  (exploiting the unit-lower structure of V).
            let mut w = vec![0.0f64; j];
            for (idx, wv) in w.iter_mut().enumerate() {
                // v_idx has unit head at row idx; v_j has unit head at row j.
                let mut s = v.at(j, idx); // row j of column idx times the implicit 1 of v_j
                for i in (j + 1)..m {
                    s += v.at(i, idx) * v.at(i, j);
                }
                *wv = s;
            }
            // T[0..j, j] = −τ_j · T[0..j, 0..j] · w
            for i in 0..j {
                let mut s = 0.0;
                for l in i..j {
                    s += t.get(i, l) * w[l];
                }
                t.set(i, j, -tj * s);
            }
        }
    }
    t
}

/// Applies the block reflector `Hᵀ = (I − V T Vᵀ)ᵀ` from the left:
/// `C ← C − V·Tᵀ·(Vᵀ C)`.
///
/// `v` is `m × k` unit-lower-trapezoidal (as stored by [`panel_qr`]),
/// `t` is the `k × k` factor from [`larft`], `c` is `m × n`.
pub fn apply_block_reflector(v: MatRef<'_>, t: MatRef<'_>, c: MatMut<'_>) {
    apply_block_reflector_with(v, t, c, BackendKind::default_kind().get())
}

/// [`apply_block_reflector`] with an explicit kernel backend for the three
/// level-3 products.
pub fn apply_block_reflector_with(v: MatRef<'_>, t: MatRef<'_>, c: MatMut<'_>, backend: &dyn Backend) {
    let k = v.cols();
    if k == 0 || c.cols() == 0 {
        return;
    }
    // Materialize V with explicit unit diagonal / zero upper part so plain
    // gemms apply (panel widths are small; the copy is cheap).
    let mut vfull = v.to_owned();
    for i in 0..k.min(vfull.rows()) {
        for j in (i + 1)..k {
            vfull.set(i, j, 0.0);
        }
        vfull.set(i, i, 1.0);
    }
    // W = Vᵀ C  (k × n)
    let w = backend.matmul(vfull.as_ref(), Trans::Yes, c.rb(), Trans::No);
    // W ← Tᵀ W
    let tw = backend.matmul(t, Trans::Yes, w.as_ref(), Trans::No);
    // C ← C − V W
    backend.gemm(-1.0, vfull.as_ref(), Trans::No, tw.as_ref(), Trans::No, 1.0, c);
}

/// Factors an `m × k` panel in place and returns `(τ, T)`; the panel is left
/// in packed `V\R` form. This is the ScaLAPACK `pdgeqr2 + pdlarft` pair used
/// by the `baseline` crate.
pub fn panel_qr(mut panel: MatMut<'_>) -> (Vec<f64>, Matrix) {
    let tau = qr_unblocked(panel.rb_mut());
    let t = larft(panel.rb(), &tau);
    (tau, t)
}

/// Blocked Householder QR of `a` in place. Returns the factors. Uses the
/// process default backend for the trailing updates.
pub fn householder_qr(a: &Matrix) -> QrFactors {
    householder_qr_with(a, BackendKind::default_kind().get())
}

/// [`householder_qr`] with an explicit kernel backend.
pub fn householder_qr_with(a: &Matrix, backend: &dyn Backend) -> QrFactors {
    let mut packed = a.clone();
    let (m, n) = (packed.rows(), packed.cols());
    let kmax = m.min(n);
    const NB: usize = 32;
    let mut tau = Vec::with_capacity(kmax);
    let mut j = 0;
    while j < kmax {
        let nb = NB.min(kmax - j);
        let (mut panel_taus, t) = {
            let panel = packed.view_mut(j, j, m - j, nb);
            panel_qr(panel)
        };
        if j + nb < n {
            // Disjoint column ranges: split so the panel (read) and the
            // trailing block (write) can coexist.
            let all = packed.view_mut(j, 0, m - j, n);
            let (left, trailing) = all.split_cols(j + nb);
            let v = left.rb().sub(0, j, m - j, nb);
            apply_block_reflector_with(v, t.as_ref(), trailing, backend);
        }
        tau.append(&mut panel_taus);
        j += nb;
    }
    QrFactors { packed, tau }
}

/// Forms the reduced `m × n` orthonormal factor `Q` from packed reflectors
/// (LAPACK `dorgqr`, backward accumulation).
pub fn form_q(f: &QrFactors) -> Matrix {
    let (m, n) = (f.packed.rows(), f.packed.cols());
    let k = f.tau.len();
    let mut q = Matrix::zeros(m, n);
    for i in 0..n.min(m) {
        q.set(i, i, 1.0);
    }
    let mut vtail = Vec::new();
    for j in (0..k).rev() {
        vtail.clear();
        vtail.extend((j + 1..m).map(|i| f.packed.get(i, j)));
        let block = q.view_mut(j, j, m - j, n - j);
        apply_reflector(&vtail, f.tau[j], block);
    }
    q
}

/// Convenience: full reduced QR returning `(Q, R)` with `Q` `m × n`
/// orthonormal and `R` `n × n` upper triangular (requires `m ≥ n`).
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    qr_with(a, BackendKind::default_kind().get())
}

/// [`qr`] with an explicit kernel backend.
pub fn qr_with(a: &Matrix, backend: &dyn Backend) -> (Matrix, Matrix) {
    assert!(a.rows() >= a.cols(), "reduced QR requires m >= n");
    let f = householder_qr_with(a, backend);
    (form_q(&f), f.r())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::{frobenius, orthogonality_error, residual_error};

    fn pseudo(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| {
            ((i * n + j) as f64 * 0.37).sin() + if i == j { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = pseudo(40, 12);
        let (q, r) = qr(&a);
        assert!(residual_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-13);
        assert!(orthogonality_error(q.as_ref()) < 1e-13);
    }

    #[test]
    fn qr_reconstructs_blocked_path() {
        let a = pseudo(200, 90); // spans several 32-wide panels
        let (q, r) = qr(&a);
        assert!(residual_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-12);
        assert!(orthogonality_error(q.as_ref()) < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = pseudo(30, 10);
        let (_, r) = qr(&a);
        for i in 0..10 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn square_qr() {
        let a = pseudo(24, 24);
        let (q, r) = qr(&a);
        assert!(residual_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-13);
        assert!(orthogonality_error(q.as_ref()) < 1e-13);
    }

    #[test]
    fn already_triangular_input() {
        // Upper-triangular input: reflectors are identity, R = A (up to sign).
        let mut a = Matrix::identity(8);
        a.set(0, 5, 3.0);
        let (q, r) = qr(&a);
        assert!(residual_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-14);
        assert!(orthogonality_error(q.as_ref()) < 1e-14);
    }

    #[test]
    fn larft_matches_sequential_application() {
        // Check I − V·T·Vᵀ equals H0·H1·…·H_{k−1} by applying both to I.
        let a = pseudo(16, 5);
        let mut packed = a.clone();
        let (tau, t) = panel_qr(packed.as_mut());
        // Blocked application to the identity.
        let mut c1 = Matrix::identity(16);
        apply_block_reflector(packed.view(0, 0, 16, 5), t.as_ref(), c1.as_mut());
        // One-at-a-time application of Hᵀ… note H is symmetric (I − τvvᵀ),
        // and the product applied by apply_block_reflector is (H0⋯Hk−1)ᵀ =
        // Hk−1⋯H0. Apply reflectors in that order.
        let mut c2 = Matrix::identity(16);
        for j in 0..5 {
            let vtail: Vec<f64> = (j + 1..16).map(|i| packed.get(i, j)).collect();
            let block = c2.view_mut(j, 0, 16 - j, 16);
            apply_reflector(&vtail, tau[j], block);
        }
        let mut d = c1.clone();
        for (x, y) in d.data_mut().iter_mut().zip(c2.data()) {
            *x -= y;
        }
        assert!(frobenius(d.as_ref()) < 1e-13, "WY and sequential application disagree");
    }
}
