//! Floating-point operation conventions charged to the α-β-γ ledger.
//!
//! These are *accounting* conventions, deliberately matching the paper's §II-A
//! cost table so that the analytic cost model (`costmodel` crate) and the
//! simulator ledgers agree exactly:
//!
//! | kernel | γ count |
//! |---|---|
//! | `axpy`/elementwise (m×n) | `2mn` |
//! | `gemm` (m×n·n×k) | `2mnk` |
//! | `syrk` (AᵀA of m×n) | `mn²` (symmetric half) |
//! | triangular × rectangular (`trmm`/`trsm`/apply-R⁻¹, m×n) | `mn²` |
//! | upper×upper product (n) | `n³/3` |
//! | Cholesky alone (n) | `n³/3` |
//! | triangular inverse (n) | `n³/3` |
//! | `CholInv` (n) | `2n³/3` (paper's `T_Chol`) |
//!
//! The distributed algorithms charge these at their *local* block sizes; the
//! analytic model replicates the same charges at the same sizes. The paper's
//! headline figure-of-merit flop count `2mn² − ⅔n³` (Householder QR) is in
//! [`householder_qr_flops`]; the CQR2 critical-path count `4mn² + 5n³/3`
//! quoted in §IV is in [`cqr2_flops`].

/// γ cost of an elementwise combine (axpy) over an `m × n` block.
pub fn axpy(m: usize, n: usize) -> f64 {
    2.0 * m as f64 * n as f64
}

/// γ cost of a general `m × n · n × k` matrix multiplication.
pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// γ cost of `AᵀA` for an `m × n` panel (symmetric half).
///
/// This is the paper's accounting convention and is charged regardless of
/// how the kernel computes: the symmetry-aware blocked SYRK really does
/// skip the upper-triangle tiles, which shows up as a faster *effective
/// rate* against this fixed count (see [`crate::probe::probe_syrk`]), never
/// as a different ledger charge — cost-model exactness stays
/// kernel-invariant.
pub fn syrk(m: usize, n: usize) -> f64 {
    m as f64 * n as f64 * n as f64
}

/// γ cost of applying a triangular `n × n` operand to an `m × n` block
/// (triangular multiply or solve — the structure halves the work of gemm).
pub fn trmm(m: usize, n: usize) -> f64 {
    m as f64 * n as f64 * n as f64
}

/// γ cost of a Cholesky factorization alone.
pub fn chol(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0
}

/// γ cost of a lower-triangular inversion alone.
pub fn trtri(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0
}

/// γ cost of the joint `CholInv` (Cholesky + inverse) — the paper's
/// `T_Chol(n) = (2n³/3)·γ`.
pub fn cholinv(n: usize) -> f64 {
    chol(n) + trtri(n)
}

/// γ cost of the product of two `n × n` upper-triangular matrices
/// (Algorithm 7 line 3: `R ← R₂·R₁`, `(1/3)n³`).
pub fn triu_mul(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0
}

/// γ cost of a rank-k row-append factor update
/// ([`crate::update::rank_k_append`]): the `BᵀB` Gram delta (`kn²`, SYRK
/// convention), the triangular `RᵀR` accumulation (`n³/3`: 2 flops per
/// multiply-add over the `n³/6` lower-triangle terms), and the
/// re-factorization (`n³/3`, Cholesky alone).
pub fn rank_k_append(n: usize, k: usize) -> f64 {
    let nf = n as f64;
    syrk(k, n) + nf * nf * nf / 3.0 + chol(n)
}

/// γ cost of a rank-k row-downdate ([`crate::update::rank_k_downdate`]):
/// per removed row, one triangular solve (`n²`, trmm convention) plus the
/// hyperbolic-rotation sweep over the upper triangle (`2n²`: 4 flops per
/// element over `n²/2` entries).
pub fn rank_k_downdate(n: usize, k: usize) -> f64 {
    let (nf, kf) = (n as f64, k as f64);
    kf * 3.0 * nf * nf
}

/// γ cost of maintaining the right-hand-side track `d = Aᵀb` through a
/// rank-k delta (`d ± BᵀC` for a `k × n` row block against `k × nrhs`
/// right-hand sides): one `n × k · k × nrhs` gemm.
pub fn rhs_update(n: usize, k: usize, nrhs: usize) -> f64 {
    gemm(n, k, nrhs)
}

/// γ cost of the semi-normal-equations solve `RᵀR·x = d` through an `n × n`
/// factor with `nrhs` right-hand sides: a forward (`Rᵀ`) and a backward
/// (`R`) triangular substitution, each `n²·nrhs` (trmm convention).
pub fn stream_solve(n: usize, nrhs: usize) -> f64 {
    2.0 * trmm(nrhs, n)
}

/// γ cost of the *corrected* semi-normal-equations solve over `m` retained
/// rows: the plain solve, the residual `b − A·x` (gemm + axpy), its
/// projection `Aᵀr`, and the second pair of substitutions for the
/// correction.
pub fn stream_solve_refined(m: usize, n: usize, nrhs: usize) -> f64 {
    stream_solve(n, nrhs) * 2.0 + gemm(m, n, nrhs) + axpy(m, nrhs) + gemm(n, m, nrhs)
}

/// Householder QR flop count `2mn² − ⅔n³` — the figure-of-merit numerator
/// used for *both* algorithms' Gigaflops/s/node in every plot (paper §IV-C).
pub fn householder_qr_flops(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    2.0 * m * n * n - 2.0 / 3.0 * n * n * n
}

/// CholeskyQR2 critical-path flop count `4mn² + 5n³/3` (paper §IV).
pub fn cqr2_flops(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    4.0 * m * n * n + 5.0 / 3.0 * n * n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventions_are_consistent() {
        assert_eq!(gemm(2, 3, 4), 48.0);
        assert_eq!(syrk(8, 2), 32.0);
        assert_eq!(cholinv(3), chol(3) + trtri(3));
    }

    #[test]
    fn cqr2_flops_double_householder_for_tall() {
        // For m ≫ n, CQR2 does ≈ 2× the Householder flops — the paper's
        // "factor of 2x to 4x greater percentage of peak" remark.
        let m = 1 << 20;
        let n = 64;
        let ratio = cqr2_flops(m, n) / householder_qr_flops(m, n);
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }
}
