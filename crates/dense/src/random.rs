//! Seeded random test matrices.
//!
//! The paper's scaling studies "generate random matrices" (§IV-C); the
//! stability discussion in §I additionally needs matrices with *prescribed
//! condition number*. Both generators are deterministic given a seed so that
//! distributed runs can regenerate exactly the same global matrix on every
//! rank without communication.

use crate::gemm::{gemm, Trans};
use crate::householder::qr;
use crate::matrix::Matrix;

/// Self-contained deterministic RNG (splitmix64): the workspace builds
/// offline, so the `rand` crate is unavailable; this generator is more than
/// adequate for test matrices and keeps seeded streams stable across
/// platforms and toolchains.
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Seeds the stream; equal seeds give bitwise-equal streams.
    pub fn seed_from_u64(seed: u64) -> SeededRng {
        SeededRng {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x2545_f491_4f6c_dd1d,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard-normal sample via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.uniform();
            let u2 = self.uniform();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

fn gaussian(rng: &mut SeededRng) -> f64 {
    rng.gaussian()
}

/// `m × n` matrix of i.i.d. standard normals.
pub fn gaussian_matrix(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(m * n);
    for _ in 0..m * n {
        data.push(gaussian(&mut rng));
    }
    Matrix::from_vec(m, n, data)
}

/// An `m × n` matrix (`m ≥ n`) with singular values logarithmically spaced in
/// `[1/cond, 1]`, built as `U·Σ·Vᵀ` with `U` (`m × n`) and `V` (`n × n`)
/// orthonormal factors from QR of Gaussian matrices.
///
/// `κ₂(A) = cond` up to rounding; CholeskyQR's orthogonality loss scales as
/// `ε·κ²` on these inputs, which the stability experiment measures.
pub fn matrix_with_condition(m: usize, n: usize, cond: f64, seed: u64) -> Matrix {
    assert!(m >= n, "prescribed-condition generator requires m >= n");
    assert!(cond >= 1.0);
    let (u, _) = qr(&gaussian_matrix(m, n, seed));
    let (v, _) = qr(&gaussian_matrix(n, n, seed.wrapping_add(0x9e3779b97f4a7c15)));
    // Σ: log-spaced singular values from 1 down to 1/cond.
    let mut usigma = u;
    for j in 0..n {
        let t = if n == 1 { 0.0 } else { j as f64 / (n - 1) as f64 };
        let sv = cond.powf(-t);
        for i in 0..m {
            let val = usigma.get(i, j) * sv;
            usigma.set(i, j, val);
        }
    }
    let mut a = Matrix::zeros(m, n);
    gemm(1.0, usigma.as_ref(), Trans::No, v.as_ref(), Trans::Yes, 0.0, a.as_mut());
    a
}

/// A well-conditioned random tall matrix (κ ≈ small constant) — the default
/// workload of the scaling benchmarks.
pub fn well_conditioned(m: usize, n: usize, seed: u64) -> Matrix {
    // Gaussian matrices are well conditioned with overwhelming probability
    // for m ≥ 2n; for squarer aspect ratios, shift the spectrum slightly by
    // adding a scaled identity-like component.
    let mut a = gaussian_matrix(m, n, seed);
    if m < 2 * n {
        let boost = (n as f64).sqrt();
        for i in 0..n.min(m) {
            let v = a.get(i, i);
            a.set(i, i, v + boost);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::singular_values;

    #[test]
    fn deterministic_given_seed() {
        let a = gaussian_matrix(8, 5, 42);
        let b = gaussian_matrix(8, 5, 42);
        assert_eq!(a, b);
        let c = gaussian_matrix(8, 5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let a = gaussian_matrix(200, 50, 7);
        let mean: f64 = a.data().iter().sum::<f64>() / a.data().len() as f64;
        let var: f64 = a.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / a.data().len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn prescribed_condition_is_achieved() {
        let cond = 1e6;
        let a = matrix_with_condition(60, 12, cond, 3);
        let sv = singular_values(&a);
        let measured = sv[0] / sv[sv.len() - 1];
        assert!(
            (measured / cond - 1.0).abs() < 1e-6,
            "κ measured {measured}, wanted {cond}"
        );
    }

    #[test]
    fn condition_one_is_orthogonal() {
        let a = matrix_with_condition(30, 8, 1.0, 11);
        let sv = singular_values(&a);
        assert!((sv[0] - 1.0).abs() < 1e-12);
        assert!((sv[sv.len() - 1] - 1.0).abs() < 1e-12);
    }
}
