//! Level-1 vector kernels used throughout the blocked algorithms.

/// `y ← y + a·x`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Dot product with 8-way lane-split accumulation: the independent
/// partial sums let the compiler vectorize what [`dot`]'s strictly
/// sequential reduction cannot. Rounding differs from [`dot`] (both are
/// ε-level summations); reach for this on long vectors in hot loops.
#[inline]
pub fn dot_lanes(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    const LANES: usize = 8;
    let chunks = x.len() / LANES;
    let mut acc = [0.0f64; LANES];
    for c in 0..chunks {
        let xb = &x[c * LANES..(c + 1) * LANES];
        let yb = &y[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] += xb[l] * yb[l];
        }
    }
    let mut tail = 0.0;
    for i in chunks * LANES..x.len() {
        tail += x[i] * y[i];
    }
    acc.iter().sum::<f64>() + tail
}

/// `x ← a·x`.
#[inline]
pub fn scal(a: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= a;
    }
}

/// Euclidean norm with scaling to avoid overflow on extreme inputs.
pub fn nrm2(x: &[f64]) -> f64 {
    let amax = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if amax == 0.0 || !amax.is_finite() {
        return amax;
    }
    let mut sum = 0.0;
    for &v in x {
        let s = v / amax;
        sum += s * s;
    }
    amax * sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_lanes_matches_dot() {
        for len in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let x: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
            let y: Vec<f64> = (0..len).map(|i| (i as f64).cos() + 0.5).collect();
            let a = dot(&x, &y);
            let b = dot_lanes(&x, &y);
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "len {len}: {a} vs {b}");
        }
    }

    #[test]
    fn nrm2_is_scaled() {
        let big = 1e200;
        let x = [3.0 * big, 4.0 * big];
        let n = nrm2(&x);
        assert!((n - 5.0 * big).abs() / (5.0 * big) < 1e-15);
    }

    #[test]
    fn nrm2_zero() {
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
        assert_eq!(nrm2(&[]), 0.0);
    }
}
