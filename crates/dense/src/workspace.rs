//! Grow-only scratch arenas: reuse algorithm temporaries and kernel pack
//! buffers instead of re-allocating them on every hot-path call.
//!
//! CholeskyQR2's factor path is called repeatedly on same-shape inputs — a
//! reusable [`QrPlan`](../../cacqr/driver/struct.QrPlan.html) factors many
//! matrices, a `QrService` worker factors thousands — and before this layer
//! every call re-allocated the same Gram matrices, broadcast buffers,
//! quadrant copies, and gemm pack panels. A [`Workspace`] is a free-list
//! arena for `Vec<f64>` storage: [`take_vec`](Workspace::take_vec) hands out
//! a buffer (recycling a parked one when any is large enough, growing it in
//! place otherwise), [`recycle_vec`](Workspace::recycle_vec) parks it again.
//! Capacities only grow, so after a warm-up call every `take` is served
//! without touching the heap — the *zero steady-state allocation* contract
//! the `alloc_steady_state` integration test pins down.
//!
//! Three ways to hold one:
//!
//! * **Explicit** — the distributed drivers (`mm3d`, `cfr3d`, the CQR
//!   passes) take `&mut Workspace` so the caller controls reuse across
//!   passes and across calls.
//! * **Pooled** — a [`WorkspacePool`] is a shared, thread-safe set of
//!   arenas. `QrPlan` owns one: each simulated rank checks an arena out for
//!   the duration of its SPMD body and parks it again, so `factor(&self)`
//!   stays `&self` and repeated factors reuse warm buffers even though the
//!   simulator spawns fresh rank threads per run.
//! * **Thread-local** — [`with_thread_local`] serves call sites that cannot
//!   thread a parameter (the blocked kernel's internal pack buffers, the
//!   sequential `cqr` helpers). Per OS thread, so persistent worker threads
//!   (e.g. `QrService` workers) reach steady state too.
//!
//! # Discipline
//!
//! Only *temporaries* come from a workspace: every `take` must be matched
//! by a `recycle` before the value escapes to a caller that does not know
//! about the arena. Outputs that escape (the factors in a `QrReport`) are
//! plain allocations — recycling foreign buffers would grow the pool
//! without bound. The accounting ([`Workspace::heap_allocations`],
//! [`WorkspacePool::heap_allocations`]) counts only *fresh heap
//! allocations performed by the arena*, which is exactly the quantity that
//! must stop growing once a workload reaches steady state.

use crate::matrix::{MatRef, Matrix};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A grow-only free-list arena for `f64` buffers. See the [module
/// docs](self).
#[derive(Debug, Default)]
pub struct Workspace {
    /// Parked buffers, sorted by capacity (ascending) for best-fit reuse.
    free: Vec<Vec<f64>>,
    /// Fresh heap allocations (new buffers + in-place growths) ever made.
    heap_allocations: usize,
    /// Total `take_*` calls served.
    takes: usize,
    /// Total buffers parked back.
    recycles: usize,
}

impl Workspace {
    /// An empty arena. Allocates nothing until the first `take`.
    pub const fn new() -> Workspace {
        Workspace {
            free: Vec::new(),
            heap_allocations: 0,
            takes: 0,
            recycles: 0,
        }
    }

    /// Hands out a buffer of exactly `len` elements with **unspecified
    /// contents** (stale data from a previous use is possible — callers
    /// must fully overwrite). Reuses the best-fitting parked buffer;
    /// allocates or grows only when nothing parked is large enough.
    pub fn take_vec(&mut self, len: usize) -> Vec<f64> {
        self.takes += 1;
        // Best fit: the smallest parked capacity that can hold `len`.
        let fit = self.free.partition_point(|b| b.capacity() < len);
        let mut buf = if fit < self.free.len() {
            self.free.remove(fit)
        } else if let Some(mut largest) = self.free.pop() {
            // Grow the largest parked buffer rather than stranding it:
            // capacities converge on the workload's high-water marks.
            self.heap_allocations += 1;
            largest.clear();
            largest.reserve_exact(len);
            largest
        } else {
            self.heap_allocations += 1;
            Vec::with_capacity(len)
        };
        // Within capacity: neither branch allocates. `truncate` leaves the
        // surviving prefix untouched (stale), `resize` zero-writes only the
        // extension — both keep every element initialized.
        if buf.len() >= len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Hands out an all-zero buffer of `len` elements.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.take_vec(len);
        buf.fill(0.0);
        buf
    }

    /// Hands out a zeroed `rows × cols` matrix backed by arena storage.
    /// Recycle it with [`recycle`](Workspace::recycle) when done.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_zeroed(rows * cols))
    }

    /// Hands out a `rows × cols` matrix with **unspecified contents** —
    /// the right call when every element is about to be overwritten anyway
    /// (a `gemm`/`syrk` `_into` destination with `β = 0`, a broadcast
    /// target, a copy destination); skips [`take_matrix`]'s zero pass.
    ///
    /// [`take_matrix`]: Workspace::take_matrix
    pub fn take_matrix_stale(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_vec(rows * cols))
    }

    /// Hands out an arena-backed copy of a view.
    pub fn take_copy(&mut self, src: MatRef<'_>) -> Matrix {
        let mut m = Matrix::from_vec(src.rows(), src.cols(), self.take_vec(src.rows() * src.cols()));
        m.as_mut().copy_from(src);
        m
    }

    /// Parks a buffer for reuse. Only hand back buffers obtained from *a*
    /// workspace (any arena in the same [`WorkspacePool`] is fine) — parking
    /// foreign buffers grows the inventory without bound.
    pub fn recycle_vec(&mut self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        self.recycles += 1;
        let at = self.free.partition_point(|b| b.capacity() < buf.capacity());
        self.free.insert(at, buf);
    }

    /// Parks a matrix's backing storage for reuse.
    pub fn recycle(&mut self, m: Matrix) {
        self.recycle_vec(m.into_vec());
    }

    /// Fresh heap allocations this arena has ever performed. Flat across
    /// calls ⇔ the workload reached steady state.
    pub fn heap_allocations(&self) -> usize {
        self.heap_allocations
    }

    /// Total `take_*` calls served (for utilization diagnostics).
    pub fn takes(&self) -> usize {
        self.takes
    }

    /// Total buffers parked back.
    pub fn recycles(&self) -> usize {
        self.recycles
    }

    /// Number of parked buffers.
    pub fn parked(&self) -> usize {
        self.free.len()
    }

    /// Total capacity (in `f64` elements) parked in this arena.
    pub fn parked_capacity(&self) -> usize {
        self.free.iter().map(Vec::capacity).sum()
    }

    /// Drops every parked buffer, returning the arena to its empty state
    /// (the "reset" of the grow-only contract: capacities are surrendered,
    /// accounting is kept).
    pub fn reset(&mut self) {
        self.free.clear();
    }
}

/// A shared, thread-safe pool of [`Workspace`] arenas.
///
/// [`checkout_at(i)`](WorkspacePool::checkout_at) hands out the arena at
/// slot `i` (creating an empty one on first use); the returned
/// [`PooledWorkspace`] guard parks it back on drop. Concurrent users — the
/// simulated ranks of one `factor`, or several `QrService` workers sharing
/// a cached plan — each hold distinct arenas, so no lock is held while
/// computing.
///
/// **Why indexed slots matter:** a distributed factorization's per-rank
/// storage demand is a deterministic function of the rank's role, and the
/// rank outputs (the `Q`/`R` pieces) leave the rank thread and are recycled
/// later by the assembly thread. Pinning rank `i` to slot `i` — and
/// recycling each piece back *into its producer's slot* — keeps every
/// arena's inventory exactly balanced call over call, which is what makes
/// the second and every later `factor` through one pool perform **zero
/// arena allocations**. (Anonymous [`checkout`](WorkspacePool::checkout)
/// exists for callers without a natural index; under concurrent indexed
/// contention the loser of a slot race falls back to the anonymous list.)
#[derive(Debug, Default)]
pub struct WorkspacePool {
    /// Slot-pinned arenas (`None` while checked out or never created).
    indexed: Mutex<Vec<Option<Workspace>>>,
    /// Anonymous arenas plus overflow from slot races.
    anon: Mutex<Vec<Workspace>>,
    /// Arenas ever created (pool growth indicator).
    created: AtomicUsize,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> WorkspacePool {
        WorkspacePool::default()
    }

    fn make_arena(&self) -> Workspace {
        self.created.fetch_add(1, Ordering::Relaxed);
        Workspace::new()
    }

    /// Checks out the arena pinned to slot `index` (see the type docs).
    /// Falls back to an anonymous arena, then to a fresh one, when the slot
    /// is already out.
    pub fn checkout_at(&self, index: usize) -> PooledWorkspace<'_> {
        crate::fault::maybe_delay(crate::fault::ARENA);
        let from_slot = {
            let mut indexed = self.indexed.lock().unwrap_or_else(|e| e.into_inner());
            if indexed.len() <= index {
                indexed.resize_with(index + 1, || None);
            }
            indexed[index].take()
        };
        let ws = from_slot
            .or_else(|| self.anon.lock().unwrap_or_else(|e| e.into_inner()).pop())
            .unwrap_or_else(|| self.make_arena());
        PooledWorkspace {
            ws: Some(ws),
            pool: self,
            index: Some(index),
        }
    }

    /// Takes the arena pinned to slot `index` *by value* (falling back to an
    /// anonymous arena, then a fresh one). Unlike
    /// [`checkout_at`](WorkspacePool::checkout_at) the caller owns the arena
    /// outright — no pool lifetime — which is what lets a spawned rank
    /// thread carry its communication arena across an SPMD region. Pair
    /// with [`put_at`](WorkspacePool::put_at) to return it.
    pub fn take_at(&self, index: usize) -> Workspace {
        crate::fault::maybe_delay(crate::fault::ARENA);
        let from_slot = {
            let mut indexed = self.indexed.lock().unwrap_or_else(|e| e.into_inner());
            if indexed.len() <= index {
                indexed.resize_with(index + 1, || None);
            }
            indexed[index].take()
        };
        from_slot
            .or_else(|| self.anon.lock().unwrap_or_else(|e| e.into_inner()).pop())
            .unwrap_or_else(|| self.make_arena())
    }

    /// Parks an arena obtained with [`take_at`](WorkspacePool::take_at) back
    /// into slot `index` (overflow from a slot race joins the anonymous
    /// list, same as guard drop).
    pub fn put_at(&self, index: usize, ws: Workspace) {
        self.park(ws, Some(index));
    }

    /// Checks out an anonymous arena (no slot affinity).
    pub fn checkout(&self) -> PooledWorkspace<'_> {
        crate::fault::maybe_delay(crate::fault::ARENA);
        let ws = self
            .anon
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_else(|| self.make_arena());
        PooledWorkspace {
            ws: Some(ws),
            pool: self,
            index: None,
        }
    }

    fn park(&self, ws: Workspace, index: Option<usize>) {
        if let Some(i) = index {
            let mut indexed = self.indexed.lock().unwrap_or_else(|e| e.into_inner());
            if indexed.len() <= i {
                indexed.resize_with(i + 1, || None);
            }
            if indexed[i].is_none() {
                indexed[i] = Some(ws);
                return;
            }
        }
        self.anon.lock().unwrap_or_else(|e| e.into_inner()).push(ws);
    }

    /// Fresh heap allocations across every *parked* arena. Call while the
    /// pool is quiescent (no outstanding checkouts) for exact totals.
    pub fn heap_allocations(&self) -> usize {
        let indexed = self.indexed.lock().unwrap_or_else(|e| e.into_inner());
        let anon = self.anon.lock().unwrap_or_else(|e| e.into_inner());
        indexed.iter().flatten().map(Workspace::heap_allocations).sum::<usize>()
            + anon.iter().map(Workspace::heap_allocations).sum::<usize>()
    }

    /// Number of arenas ever created.
    pub fn arenas(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Number of arenas currently parked.
    pub fn parked(&self) -> usize {
        let indexed = self.indexed.lock().unwrap_or_else(|e| e.into_inner());
        let anon = self.anon.lock().unwrap_or_else(|e| e.into_inner());
        indexed.iter().flatten().count() + anon.len()
    }

    /// Total parked buffer capacity (in `f64` elements) across all parked
    /// arenas — the pool's steady-state memory footprint.
    pub fn parked_capacity(&self) -> usize {
        let indexed = self.indexed.lock().unwrap_or_else(|e| e.into_inner());
        let anon = self.anon.lock().unwrap_or_else(|e| e.into_inner());
        indexed.iter().flatten().map(Workspace::parked_capacity).sum::<usize>()
            + anon.iter().map(Workspace::parked_capacity).sum::<usize>()
    }
}

/// RAII checkout of one arena from a [`WorkspacePool`]; derefs to
/// [`Workspace`] and parks it back on drop (into its slot when pinned).
pub struct PooledWorkspace<'a> {
    ws: Option<Workspace>,
    pool: &'a WorkspacePool,
    index: Option<usize>,
}

impl std::ops::Deref for PooledWorkspace<'_> {
    type Target = Workspace;

    fn deref(&self) -> &Workspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.park(ws, self.index);
        }
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<Workspace> = const { RefCell::new(Workspace::new()) };
}

/// Runs `f` with this OS thread's private arena.
///
/// The borrow lasts only for `f`; **never** call back into
/// `with_thread_local` from inside `f` (the nested borrow panics). The
/// kernel-internal users keep their borrows to single `take`/`recycle`
/// calls for exactly that reason.
pub fn with_thread_local<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

/// Takes a buffer of `len` elements (unspecified contents) from the
/// thread-local arena. Pair with [`recycle_local_vec`].
pub fn take_local_vec(len: usize) -> Vec<f64> {
    with_thread_local(|ws| ws.take_vec(len))
}

/// Parks a buffer back into the thread-local arena.
pub fn recycle_local_vec(buf: Vec<f64>) {
    with_thread_local(|ws| ws.recycle_vec(buf));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reaches_steady_state() {
        let mut ws = Workspace::new();
        for round in 0..5 {
            let a = ws.take_vec(1000);
            let b = ws.take_vec(500);
            let c = ws.take_matrix(10, 30);
            assert_eq!(a.len(), 1000);
            assert_eq!(b.len(), 500);
            assert!(c.data().iter().all(|&v| v == 0.0));
            ws.recycle_vec(a);
            ws.recycle_vec(b);
            ws.recycle(c);
            if round == 0 {
                assert_eq!(ws.heap_allocations(), 3, "cold round allocates each buffer once");
            }
        }
        assert_eq!(ws.heap_allocations(), 3, "steady state performs zero fresh allocations");
        assert_eq!(ws.takes(), 15);
        assert_eq!(ws.recycles(), 15);
        assert_eq!(ws.parked(), 3);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut ws = Workspace::new();
        let mut a = ws.take_vec(64);
        a.iter_mut().for_each(|v| *v = 7.5);
        ws.recycle_vec(a);
        let b = ws.take_zeroed(32);
        assert!(b.iter().all(|&v| v == 0.0), "recycled storage must be re-zeroed");
        assert_eq!(ws.heap_allocations(), 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let small = ws.take_vec(10);
        let large = ws.take_vec(1000);
        ws.recycle_vec(small);
        ws.recycle_vec(large);
        let take = ws.take_vec(8);
        assert!(take.capacity() < 1000, "small request must not burn the large buffer");
        ws.recycle_vec(take);
        assert_eq!(ws.heap_allocations(), 2);
    }

    #[test]
    fn growth_reuses_largest_parked_buffer() {
        let mut ws = Workspace::new();
        let a = ws.take_vec(100);
        ws.recycle_vec(a);
        let b = ws.take_vec(200); // grows the parked 100-buffer in place
        assert_eq!(b.len(), 200);
        ws.recycle_vec(b);
        assert_eq!(ws.heap_allocations(), 2, "one fresh alloc + one growth");
        assert_eq!(ws.parked(), 1, "growth must not strand extra buffers");
        let c = ws.take_vec(150);
        ws.recycle_vec(c);
        assert_eq!(ws.heap_allocations(), 2, "smaller takes reuse the grown buffer");
    }

    #[test]
    fn take_copy_round_trips() {
        let mut ws = Workspace::new();
        let src = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let copy = ws.take_copy(src.as_ref());
        assert_eq!(copy, src);
        ws.recycle(copy);
    }

    #[test]
    fn pool_checkout_parks_on_drop() {
        let pool = WorkspacePool::new();
        {
            let mut a = pool.checkout();
            let mut b = pool.checkout();
            let v = a.take_vec(10);
            a.recycle_vec(v);
            let v = b.take_vec(20);
            b.recycle_vec(v);
        }
        assert_eq!(pool.arenas(), 2);
        assert_eq!(pool.parked(), 2);
        assert_eq!(pool.heap_allocations(), 2);
        {
            let _c = pool.checkout();
            assert_eq!(pool.parked(), 1, "checkout pops a parked arena");
        }
        assert_eq!(pool.arenas(), 2, "warm pool creates no new arenas");
        assert!(pool.parked_capacity() >= 30);
    }

    #[test]
    fn indexed_checkout_pins_slots_and_balances_inventory() {
        let pool = WorkspacePool::new();
        // Simulate two "factor calls": ranks take from their slots, their
        // outputs escape and are recycled back into the producer's slot.
        for call in 0..3 {
            let mut outputs = Vec::new();
            for rank in 0..4usize {
                let mut ws = pool.checkout_at(rank);
                let scratch = ws.take_vec(100 + rank);
                ws.recycle_vec(scratch);
                outputs.push((rank, ws.take_vec(50 + rank)));
            }
            for (rank, out) in outputs {
                pool.checkout_at(rank).recycle_vec(out);
            }
            if call == 0 {
                assert_eq!(pool.arenas(), 4);
                // One allocation per arena: the escaping output reuses the
                // recycled scratch buffer (best fit).
                assert_eq!(pool.heap_allocations(), 4);
            }
        }
        assert_eq!(pool.arenas(), 4, "slots are reused across calls");
        assert_eq!(pool.heap_allocations(), 4, "steady state allocates nothing");
    }

    #[test]
    fn indexed_slot_race_falls_back_without_losing_arenas() {
        let pool = WorkspacePool::new();
        let a = pool.checkout_at(0);
        let b = pool.checkout_at(0); // slot already out: fresh arena
        assert_eq!(pool.arenas(), 2);
        drop(a); // returns to slot 0
        drop(b); // slot occupied: parks anonymously
        assert_eq!(pool.parked(), 2);
        {
            let _c = pool.checkout_at(0);
            let _d = pool.checkout_at(0); // falls back to the anonymous arena
            assert_eq!(pool.arenas(), 2, "no new arena despite the race");
        }
    }

    #[test]
    fn reset_surrenders_capacity_but_keeps_accounting() {
        let mut ws = Workspace::new();
        let v = ws.take_vec(64);
        ws.recycle_vec(v);
        ws.reset();
        assert_eq!(ws.parked(), 0);
        assert_eq!(ws.parked_capacity(), 0);
        assert_eq!(ws.heap_allocations(), 1);
    }

    #[test]
    fn thread_local_arena_is_per_thread_and_warm() {
        let before = with_thread_local(|ws| ws.heap_allocations());
        for _ in 0..3 {
            let v = take_local_vec(256);
            recycle_local_vec(v);
        }
        let after = with_thread_local(|ws| ws.heap_allocations());
        assert!(after <= before + 1, "at most one cold allocation for the new size");
        std::thread::spawn(|| {
            let v = take_local_vec(8);
            recycle_local_vec(v);
        })
        .join()
        .unwrap();
    }
}
