//! Minimal block-parallel helper for the blocked backend.
//!
//! The workspace builds offline (no `rayon`), so parallelism is implemented
//! with `std::thread::scope`: a shared atomic counter hands out block
//! indices to a small pool of scoped workers. Work assignment is dynamic
//! (nondeterministic), but every block writes a disjoint region and each
//! block's arithmetic is self-contained, so results are bitwise independent
//! of the schedule.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Maximum worker threads for block-parallel kernels: the `CACQR_THREADS`
/// environment variable if set, else `std::thread::available_parallelism()`.
/// Read once and cached.
pub fn max_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("CACQR_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Runs `f(0..nblocks)` across up to `threads` scoped workers.
///
/// `f` must be safe to call concurrently for distinct block indices (each
/// index must touch disjoint output). Falls back to a plain loop when one
/// worker suffices.
pub fn par_blocks<F: Fn(usize) + Sync>(nblocks: usize, threads: usize, f: F) {
    let workers = threads.min(nblocks);
    if workers <= 1 {
        for i in 0..nblocks {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= nblocks {
            break;
        }
        f(i);
    };
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(work);
        }
        work(); // the calling thread is worker 0
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_block_exactly_once() {
        let n = 97;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_blocks(n, 4, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_thread_path() {
        let hits: Vec<AtomicU64> = (0..5).map(|_| AtomicU64::new(0)).collect();
        par_blocks(5, 1, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }
}
