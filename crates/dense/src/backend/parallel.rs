//! Minimal block-parallel helper for the blocked backend, plus the
//! process-wide thread budget shared with pool-level schedulers.
//!
//! The workspace builds offline (no `rayon`), so parallelism is implemented
//! with `std::thread::scope`: a shared atomic counter hands out block
//! indices to a small pool of scoped workers. Work assignment is dynamic
//! (nondeterministic), but every block writes a disjoint region and each
//! block's arithmetic is self-contained, so results are bitwise independent
//! of the schedule.
//!
//! # The two layers of parallelism
//!
//! Two independent schedulers compete for the same cores:
//!
//! 1. **Block-level** — [`par_blocks`] inside one kernel call (one gemm
//!    splitting its row blocks across threads).
//! 2. **Pool-level** — a batch engine (e.g. `cacqr`'s `QrService`) running
//!    many whole factorizations concurrently, one per worker thread.
//!
//! If each kernel claimed the whole [`max_threads`] budget while a pool ran
//! `W` factorizations at once, the process would oversubscribe to
//! `W × max_threads` runnable threads. Pool schedulers therefore *register*
//! their workers with [`PoolReservation::register`]; while any reservation
//! is live, [`kernel_threads`] hands each kernel call its fair share
//! `max_threads / pool_workers` (at least 1) instead of the full budget.
//!
//! The share is *idle-aware*: a pool worker with nothing to do (parked on
//! its queue) can mark itself idle via [`pool_worker_idle`], and the fair
//! share divides by the workers actually running. A pool of 8 where 7
//! sleep hands the one straggler the whole budget — without this, the tail
//! job of every batch would limp along at 1/8th speed on an otherwise idle
//! machine. Pools that never mark idleness get the old static split.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker threads currently reserved by pool-level schedulers.
static POOL_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Reserved pool workers currently parked (no work), per
/// [`pool_worker_idle`]. Always ≤ `POOL_WORKERS` while guards are scoped
/// inside reservations, which [`kernel_threads`] defends anyway.
static IDLE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Maximum worker threads for block-parallel kernels: the `CACQR_THREADS`
/// environment variable if set, else `std::thread::available_parallelism()`.
///
/// Resolved **once** per process via `OnceLock` — kernels on the hot path
/// never touch the environment — so the budget cannot change mid-run.
pub fn max_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("CACQR_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Clamps a requested pool-level worker count to the process thread budget:
/// `thread_budget(0) == 1`, `thread_budget(usize::MAX) == max_threads()`.
///
/// Pool schedulers size their pools with this so that pool width alone never
/// exceeds the budget; the per-kernel share is then governed by the pool's
/// [`PoolReservation`].
pub fn thread_budget(requested: usize) -> usize {
    requested.clamp(1, max_threads())
}

/// Effective thread count for one block-parallel kernel call: the full
/// [`max_threads`] budget when no pool scheduler is active, otherwise the
/// fair share `max_threads / active_pool_workers`, never below 1 — where
/// workers marked idle via [`pool_worker_idle`] don't count against the
/// split (their share flows to the workers still running).
pub fn kernel_threads() -> usize {
    let pool = POOL_WORKERS.load(Ordering::Relaxed);
    let total = max_threads();
    if pool <= 1 {
        return total;
    }
    // Clamp idle at pool − 1: at least one worker (the caller) is running,
    // and a transiently stale idle count must never divide by zero.
    let idle = IDLE_WORKERS.load(Ordering::Relaxed).min(pool - 1);
    let active = pool - idle;
    if active <= 1 {
        total
    } else {
        (total / active).max(1)
    }
}

/// RAII marker that the calling pool worker is parked with no work: while
/// held, [`kernel_threads`] excludes this worker from the fair-share split,
/// so busy siblings inherit its cores. Dropping the guard (on wakeup)
/// reclaims the share. Only meaningful inside a live [`PoolReservation`].
#[derive(Debug)]
pub struct PoolIdleGuard(());

/// Marks the calling pool worker idle for the guard's lifetime.
pub fn pool_worker_idle() -> PoolIdleGuard {
    IDLE_WORKERS.fetch_add(1, Ordering::Relaxed);
    PoolIdleGuard(())
}

impl Drop for PoolIdleGuard {
    fn drop(&mut self) {
        IDLE_WORKERS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII registration of a pool-level scheduler's workers against the shared
/// thread budget.
///
/// While alive, every kernel call in the process sees a reduced
/// [`kernel_threads`] so that `pool workers × kernel threads ≤ max_threads`
/// (up to rounding, and never starving a kernel below one thread). Dropping
/// the reservation restores the previous budget. Reservations stack: two
/// pools of 2 workers each count as 4.
#[derive(Debug)]
pub struct PoolReservation {
    workers: usize,
}

impl PoolReservation {
    /// Registers `workers` pool-level worker threads. Pass the *actual* pool
    /// width (typically already clamped via [`thread_budget`]).
    pub fn register(workers: usize) -> PoolReservation {
        POOL_WORKERS.fetch_add(workers, Ordering::Relaxed);
        PoolReservation { workers }
    }

    /// Number of workers this reservation holds.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for PoolReservation {
    fn drop(&mut self) {
        POOL_WORKERS.fetch_sub(self.workers, Ordering::Relaxed);
    }
}

/// Runs `f(0..nblocks)` across up to `threads` scoped workers.
///
/// `f` must be safe to call concurrently for distinct block indices (each
/// index must touch disjoint output). Falls back to a plain loop when one
/// worker suffices.
pub fn par_blocks<F: Fn(usize) + Sync>(nblocks: usize, threads: usize, f: F) {
    let workers = threads.min(nblocks);
    if workers <= 1 {
        for i in 0..nblocks {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= nblocks {
            break;
        }
        f(i);
    };
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(work);
        }
        work(); // the calling thread is worker 0
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_block_exactly_once() {
        let n = 97;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_blocks(n, 4, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_thread_path() {
        let hits: Vec<AtomicU64> = (0..5).map(|_| AtomicU64::new(0)).collect();
        par_blocks(5, 1, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn budget_clamps_to_process_maximum() {
        assert_eq!(thread_budget(0), 1);
        assert_eq!(thread_budget(1), 1);
        assert_eq!(thread_budget(usize::MAX), max_threads());
        assert!(thread_budget(2) <= max_threads());
    }

    /// Serializes tests that mutate the global reservation/idle counters.
    static RESERVATION_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn reservations_split_the_kernel_share_and_restore_on_drop() {
        let _serial = RESERVATION_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let before = kernel_threads();
        {
            let r = PoolReservation::register(max_threads().max(1) * 8);
            assert_eq!(r.workers(), max_threads().max(1) * 8);
            assert_eq!(kernel_threads(), 1, "oversubscribed pool must pin kernels to 1 thread");
        }
        assert_eq!(kernel_threads(), before, "dropping the reservation restores the budget");
    }

    #[test]
    fn idle_workers_return_their_share_and_reclaim_on_wake() {
        let _serial = RESERVATION_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let pool = max_threads().max(1) * 8;
        let _r = PoolReservation::register(pool);
        assert_eq!(kernel_threads(), 1, "fully busy oversubscribed pool splits to 1");
        {
            // All but one worker parked: the lone runner gets everything.
            let guards: Vec<_> = (0..pool - 1).map(|_| pool_worker_idle()).collect();
            assert_eq!(kernel_threads(), max_threads());
            drop(guards);
        }
        assert_eq!(kernel_threads(), 1, "woken workers reclaim their share");
        // Half idle: the share doubles (subject to the ≥1 floor).
        let _half: Vec<_> = (0..pool / 2).map(|_| pool_worker_idle()).collect();
        assert_eq!(kernel_threads(), (max_threads() / (pool - pool / 2)).max(1));
    }
}
