//! The packed, cache-blocked, register-tiled kernel backend.
//!
//! `gemm` follows the classic BLIS/faer loop structure over row-major
//! storage:
//!
//! ```text
//! for jc in steps of NC over n:              (B column block)
//!   for pc in steps of KC over k:            (contraction block)
//!     pack op(B)[pc, jc] into NR-wide column micro-panels
//!     for ic in steps of MC over m:          (A row block — parallel)
//!       pack op(A)[ic, pc] into MR-tall row micro-panels
//!       for each (MR × NR) tile of C[ic, jc]:
//!         microkernel: MR×NR register accumulators over the KC range
//! ```
//!
//! Packing reads the operands *through* their transpose flags, so a
//! transposed operand costs only a strided panel copy that the kernel needs
//! anyway — never a full-matrix `to_owned_transposed()` copy like the naive
//! path takes. Pack buffers come from the **thread-local workspace arena**
//! ([`crate::workspace`]): one `take`/`recycle` pair per buffer use, so the
//! per-`(jc, pc)`-block (and, for `apack`, per-row-block) allocations are
//! gone — a *persistent* thread (a `QrService` worker, a bench loop, the
//! sequential CQR helpers) reaches zero steady-state pack allocations.
//! Threads that live for one kernel sweep (the simulator's per-call rank
//! threads, `par_blocks` workers) still pay one allocation per buffer size
//! per thread lifetime; their arena dies with them.
//!
//! `syrk` is a *symmetry-aware* instance of the same loop structure: the
//! Gram matrix `AᵀA` is computed by the identical packed microkernel sweep
//! with `op(A) = Aᵀ` and `op(B) = A`, except that micro-tiles lying entirely
//! above the diagonal are **skipped** (their values are recovered by the
//! final mirror). Every computed element accumulates in exactly the order
//! the full gemm would use, so the result is bitwise identical to
//! `gemm(1, Aᵀ, A)` while performing roughly half the tile arithmetic —
//! the `≈2×` flop reduction the CholeskyQR Gram kernel is entitled to.
//!
//! Determinism: for every `C[i, j]` the contraction is accumulated in
//! ascending-`k` order — KC blocks outermost-to-innermost, then ascending
//! within the packed panel — regardless of how row blocks are scheduled
//! across threads. Thread count therefore never changes results. The same
//! ordering argument makes `AᵀA` bitwise symmetric (the `(i, j)` and
//! `(j, i)` sums are term-for-term identical products), which the syrk
//! mirror relies on.
//!
//! `trsm` partitions the triangular dimension into [`TRSM_NB`]-wide blocks:
//! diagonal blocks are solved with the naive row sweeps, off-diagonal
//! updates go through the blocked `gemm`, which is where nearly all the
//! arithmetic lives.

use super::parallel::{kernel_threads, par_blocks};
use super::Backend;
use crate::gemm::Trans;
use crate::matrix::{MatMut, MatRef};
use crate::workspace::{recycle_local_vec, take_local_vec};

/// Microkernel tile height (rows of `C` held in registers).
pub const MR: usize = 4;
/// Microkernel tile width (columns of `C` held in registers). With MR = 4
/// this makes eight independent FMA accumulator chains — enough to cover
/// FMA latency on AVX-512 and AVX2 alike.
pub const NR: usize = 16;
/// Contraction block: one packed `A` micro-panel (`MR × KC`) plus one packed
/// `B` micro-panel (`KC × NR`) stay resident in L1.
pub const KC: usize = 256;
/// Row block: the packed `MC × KC` `A` block targets L2.
pub const MC: usize = 128;
/// Column block: the packed `KC × NC` `B` block targets the outer cache.
pub const NC: usize = 512;
/// Triangular-solve block width: diagonal blocks this size are solved with
/// the naive kernels, everything else is blocked `gemm`.
pub const TRSM_NB: usize = 64;

/// Minimum `2mnk` flop volume per `(jc, pc)` block before worker threads
/// are recruited; below this the spawn overhead dominates.
const PAR_FLOP_THRESHOLD: f64 = 4e6;

/// The blocked backend (unit struct: all state is per-call, with pack
/// buffers borrowed from the thread-local workspace arena).
#[derive(Clone, Copy, Debug, Default)]
pub struct Blocked;

/// Shared base pointer for handing disjoint `C` row blocks to workers.
#[derive(Clone, Copy)]
struct RawC {
    ptr: *mut f64,
    stride: usize,
}

// SAFETY: workers derive disjoint row-block views from the pointer; the
// parallel partition guarantees no two blocks overlap.
unsafe impl Send for RawC {}
unsafe impl Sync for RawC {}

#[inline]
fn op_shape(a: MatRef<'_>, t: Trans) -> (usize, usize) {
    match t {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    }
}

/// Packs `op(A)[row0 .. row0+mc, k0 .. k0+kc]` into MR-tall micro-panels:
/// panel `ip` holds rows `ip·MR ..` as `kc` consecutive MR-vectors
/// (zero-padded past `mc`).
fn pack_a(a: MatRef<'_>, ta: Trans, row0: usize, mc: usize, k0: usize, kc: usize, buf: &mut [f64]) {
    let panels = mc.div_ceil(MR);
    debug_assert!(buf.len() >= panels * kc * MR);
    for ip in 0..panels {
        let i0 = ip * MR;
        let mr = MR.min(mc - i0);
        let panel = &mut buf[ip * kc * MR..(ip + 1) * kc * MR];
        if mr < MR {
            panel.fill(0.0);
        }
        match ta {
            Trans::No => {
                for r in 0..mr {
                    let src = &a.row(row0 + i0 + r)[k0..k0 + kc];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[kk * MR + r] = v;
                    }
                }
            }
            Trans::Yes => {
                // Column `i` of op(A) is row `i` of the stored matrix, so a
                // packed K-slab is a contiguous run of each stored row.
                for (kk, chunk) in panel.chunks_exact_mut(MR).enumerate().take(kc) {
                    let src = &a.row(k0 + kk)[row0 + i0..row0 + i0 + mr];
                    chunk[..mr].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs `op(B)[k0 .. k0+kc, col0 .. col0+nc]` into NR-wide micro-panels:
/// panel `jp` holds columns `jp·NR ..` as `kc` consecutive NR-vectors
/// (zero-padded past `nc`).
fn pack_b(b: MatRef<'_>, tb: Trans, k0: usize, kc: usize, col0: usize, nc: usize, buf: &mut [f64]) {
    let panels = nc.div_ceil(NR);
    debug_assert!(buf.len() >= panels * kc * NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let nr = NR.min(nc - j0);
        let panel = &mut buf[jp * kc * NR..(jp + 1) * kc * NR];
        if nr < NR {
            panel.fill(0.0);
        }
        match tb {
            Trans::No => {
                for (kk, chunk) in panel.chunks_exact_mut(NR).enumerate().take(kc) {
                    let src = &b.row(k0 + kk)[col0 + j0..col0 + j0 + nr];
                    chunk[..nr].copy_from_slice(src);
                }
            }
            Trans::Yes => {
                // Row `p` of op(B) is column `p` of the stored matrix.
                for c in 0..nr {
                    let src = &b.row(col0 + j0 + c)[k0..k0 + kc];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[kk * NR + c] = v;
                    }
                }
            }
        }
    }
}

/// The register-tiled inner product: an `MR × NR` accumulator tile over one
/// packed A panel and one packed B panel. Shared by every ISA variant so
/// they are instruction-schedule specializations of the same arithmetic.
#[inline(always)]
fn microkernel_body(kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    let a_iter = apanel.chunks_exact(MR);
    let b_iter = bpanel.chunks_exact(NR);
    for (a, b) in a_iter.zip(b_iter).take(kc) {
        let a: &[f64; MR] = a.try_into().unwrap();
        let b: &[f64; NR] = b.try_into().unwrap();
        for r in 0..MR {
            let ar = a[r];
            for c in 0..NR {
                acc[r][c] += ar * b[c];
            }
        }
    }
    acc
}

fn microkernel_scalar(kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; NR]; MR] {
    microkernel_body(kc, apanel, bpanel)
}

/// The syrk specialization of the tile body: the `A` operand is read
/// *directly out of the packed `B` buffer* — for `AᵀA` both packed
/// operands hold the same columns of `A` over the same `k` range, so the
/// `MR`-tall micro-panel at output-row offset `a_off` inside `apanel`
/// (an NR-wide panel of the B pack) is just `MR` **contiguous** values per
/// `k` step. Same loads per iteration as [`microkernel_body`], same
/// ascending-`k` accumulation order, identical bits — but the separate
/// `pack_a` pass (and its buffer) disappears from the syrk hot path
/// entirely: the Gram kernel packs once.
#[inline(always)]
fn microkernel_body_packed_b(kc: usize, apanel: &[f64], a_off: usize, bpanel: &[f64]) -> [[f64; NR]; MR] {
    debug_assert!(a_off + MR <= NR);
    let mut acc = [[0.0f64; NR]; MR];
    let a_iter = apanel.chunks_exact(NR);
    let b_iter = bpanel.chunks_exact(NR);
    for (a, b) in a_iter.zip(b_iter).take(kc) {
        let a: &[f64; MR] = a[a_off..a_off + MR].try_into().unwrap();
        let b: &[f64; NR] = b.try_into().unwrap();
        for r in 0..MR {
            let ar = a[r];
            for c in 0..NR {
                acc[r][c] += ar * b[c];
            }
        }
    }
    acc
}

fn microkernel_packed_b_scalar(kc: usize, apanel: &[f64], a_off: usize, bpanel: &[f64]) -> [[f64; NR]; MR] {
    microkernel_body_packed_b(kc, apanel, a_off, bpanel)
}

/// AVX2+FMA build of the packed-B syrk body.
///
/// # Safety
///
/// Requires the `avx2` and `fma` CPU features (checked by [`isa`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_packed_b_avx2(kc: usize, apanel: &[f64], a_off: usize, bpanel: &[f64]) -> [[f64; NR]; MR] {
    microkernel_body_packed_b(kc, apanel, a_off, bpanel)
}

/// AVX-512 build of the packed-B syrk body.
///
/// # Safety
///
/// Requires the `avx512f` CPU feature (checked by [`isa`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "fma")]
unsafe fn microkernel_packed_b_avx512(kc: usize, apanel: &[f64], a_off: usize, bpanel: &[f64]) -> [[f64; NR]; MR] {
    microkernel_body_packed_b(kc, apanel, a_off, bpanel)
}

#[inline]
fn microkernel_packed_b(which: Isa, kc: usize, apanel: &[f64], a_off: usize, bpanel: &[f64]) -> [[f64; NR]; MR] {
    match which {
        Isa::Scalar => microkernel_packed_b_scalar(kc, apanel, a_off, bpanel),
        // SAFETY: `isa()` (and `Isa::available`) only report ISAs the CPU
        // advertises.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { microkernel_packed_b_avx2(kc, apanel, a_off, bpanel) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { microkernel_packed_b_avx512(kc, apanel, a_off, bpanel) },
    }
}

/// AVX2+FMA build of the same body. The 4×16 tile is 16 ymm registers —
/// the whole AVX2 register file — so operand loads spill; still well ahead
/// of the scalar schedule.
///
/// # Safety
///
/// Requires the `avx2` and `fma` CPU features (checked by [`isa`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; NR]; MR] {
    microkernel_body(kc, apanel, bpanel)
}

/// AVX-512 build: each accumulator row is two zmm registers (8 zmm total
/// for the tile), giving eight independent FMA chains to cover FMA latency.
///
/// # Safety
///
/// Requires the `avx512f` CPU feature (checked by [`isa`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "fma")]
unsafe fn microkernel_avx512(kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; NR]; MR] {
    microkernel_body(kc, apanel, bpanel)
}

/// Instruction sets the microkernel is specialized for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Isa {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

impl Isa {
    /// Every ISA variant the running CPU can execute, scalar first. Used by
    /// the per-ISA equivalence tests; dispatch itself goes through [`isa`].
    #[cfg(test)]
    pub(crate) fn available() -> Vec<Isa> {
        #[allow(unused_mut)]
        let mut v = vec![Isa::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                v.push(Isa::Avx2);
            }
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("fma") {
                v.push(Isa::Avx512);
            }
        }
        v
    }
}

/// Detects the best microkernel ISA once per process. Caching keeps the
/// choice (and therefore rounding behavior: FMA contracts differently from
/// scalar mul+add) fixed for the process lifetime, preserving the bitwise
/// replication invariants.
#[cfg(target_arch = "x86_64")]
fn isa() -> Isa {
    use std::sync::OnceLock;
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        if std::env::var("CACQR_NO_SIMD").is_ok() {
            Isa::Scalar
        } else if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("fma") {
            Isa::Avx512
        } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            Isa::Avx2
        } else {
            Isa::Scalar
        }
    })
}

/// Non-x86 targets always use the portable scalar body.
#[cfg(not(target_arch = "x86_64"))]
fn isa() -> Isa {
    Isa::Scalar
}

#[inline]
fn microkernel(which: Isa, kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; NR]; MR] {
    match which {
        Isa::Scalar => microkernel_scalar(kc, apanel, bpanel),
        // SAFETY: `isa()` (and `Isa::available`) only report ISAs the CPU
        // advertises.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { microkernel_avx2(kc, apanel, bpanel) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { microkernel_avx512(kc, apanel, bpanel) },
    }
}

/// Multiplies one packed `A` row block against the packed `B` block,
/// accumulating `alpha ·` the product into the `mc × nc` view `cblk`.
///
/// `skip_above_diag` is the syrk specialization: with
/// `Some((row0, col0))` — the global coordinates of `cblk`'s top-left
/// element — micro-tiles lying entirely above the matrix diagonal are
/// skipped. Tiles that touch or straddle the diagonal are computed (and
/// written) in full, which keeps every written element's accumulation
/// order identical to the unskipped product.
#[allow(clippy::too_many_arguments)] // mirrors the BLIS block-product shape
fn block_product(
    which: Isa,
    alpha: f64,
    apack: &[f64],
    bpack: &[f64],
    kc: usize,
    mc: usize,
    nc: usize,
    mut cblk: MatMut<'_>,
    skip_above_diag: Option<(usize, usize)>,
) {
    let npanels = nc.div_ceil(NR);
    let mpanels = mc.div_ceil(MR);
    for jp in 0..npanels {
        let j0 = jp * NR;
        let nr = NR.min(nc - j0);
        let bpanel = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
        // Lower-triangle specialization: the first row panel whose deepest
        // row `row0 + ip·MR + MR − 1` reaches the tile's first column
        // `col0 + j0`; everything before it is strictly above the diagonal.
        let ip_start = match skip_above_diag {
            Some((row0, col0)) => ((col0 + j0 + 1).saturating_sub(row0 + MR)).div_ceil(MR).min(mpanels),
            None => 0,
        };
        for ip in ip_start..mpanels {
            let i0 = ip * MR;
            let mr = MR.min(mc - i0);
            let apanel = &apack[ip * kc * MR..(ip + 1) * kc * MR];
            let acc = microkernel(which, kc, apanel, bpanel);
            for (r, acc_row) in acc.iter().enumerate().take(mr) {
                let dst = &mut cblk.row_mut(i0 + r)[j0..j0 + nr];
                for (cv, &av) in dst.iter_mut().zip(acc_row) {
                    *cv += alpha * av;
                }
            }
        }
    }
}

/// The syrk row-block product: like [`block_product`] with the
/// lower-triangle skip, but the `A` micro-panels are **derived from the
/// packed `B` buffer** (see [`microkernel_body_packed_b`]) instead of a
/// separate `pack_a` pass. `arow0` is the output-row offset of `cblk`'s
/// first row *within the packed column range* (`i0 − jc`), which must be
/// `MR`-aligned so every tile's `A` slice stays inside one `NR` panel.
#[allow(clippy::too_many_arguments)] // mirrors the BLIS block-product shape
fn block_product_packed_b(
    which: Isa,
    bpack: &[f64],
    arow0: usize,
    kc: usize,
    mc: usize,
    nc: usize,
    mut cblk: MatMut<'_>,
    row0: usize,
    col0: usize,
) {
    debug_assert_eq!(arow0 % MR, 0);
    let npanels = nc.div_ceil(NR);
    let mpanels = mc.div_ceil(MR);
    for jp in 0..npanels {
        let j0 = jp * NR;
        let nr = NR.min(nc - j0);
        let bpanel = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
        let ip_start = ((col0 + j0 + 1).saturating_sub(row0 + MR)).div_ceil(MR).min(mpanels);
        for ip in ip_start..mpanels {
            let i0 = ip * MR;
            let mr = MR.min(mc - i0);
            let acol = arow0 + i0;
            let apanel = &bpack[(acol / NR) * kc * NR..(acol / NR + 1) * kc * NR];
            let acc = microkernel_packed_b(which, kc, apanel, acol % NR, bpanel);
            for (r, acc_row) in acc.iter().enumerate().take(mr) {
                let dst = &mut cblk.row_mut(i0 + r)[j0..j0 + nr];
                for (cv, &av) in dst.iter_mut().zip(acc_row) {
                    *cv += av;
                }
            }
        }
    }
}

/// The blocked gemm body, parameterized over the microkernel ISA (the
/// public entry resolves [`isa`] once; tests sweep every available ISA).
#[allow(clippy::too_many_arguments)] // the BLAS dgemm signature
fn gemm_with_isa(
    which: Isa,
    alpha: f64,
    a: MatRef<'_>,
    ta: Trans,
    b: MatRef<'_>,
    tb: Trans,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, k) = op_shape(a, ta);
    let (kb, n) = op_shape(b, tb);
    assert_eq!(kb, k, "gemm inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");

    if beta != 1.0 {
        for i in 0..m {
            let row = c.row_mut(i);
            if beta == 0.0 {
                row.fill(0.0);
            } else {
                for v in row {
                    *v *= beta;
                }
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    let threads = kernel_threads();
    let raw = RawC {
        ptr: c.as_mut_ptr(),
        stride: c.stride(),
    };
    // Capture the Sync wrapper by reference: precise closure capture
    // would otherwise grab the raw-pointer field itself, which is not
    // Sync.
    let raw = &raw;
    // Both pack buffers live in the workspace arena — hoisted out of every
    // loop level; a warm thread allocates nothing here.
    let mut bpack = take_local_vec(NC.min(n).div_ceil(NR) * NR * KC.min(k));

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, tb, pc, kc, jc, nc, &mut bpack);
            let bpack = &bpack[..nc.div_ceil(NR) * kc * NR];

            let nblocks = m.div_ceil(MC);
            let flops = 2.0 * m as f64 * nc as f64 * kc as f64;
            // Scale worker count with the work available so that
            // near-threshold gemms recruit few threads: this keeps the
            // per-(jc, pc) spawn/join overhead a small fraction of the
            // compute, and softens oversubscription when many simulated
            // ranks (one OS thread each) multiply concurrently.
            let workers = ((flops / PAR_FLOP_THRESHOLD) as usize).clamp(1, threads);
            par_blocks(nblocks, workers, |blk| {
                let i0 = blk * MC;
                let mc = MC.min(m - i0);
                let mut apack = take_local_vec(mc.div_ceil(MR) * MR * kc);
                pack_a(a, ta, i0, mc, pc, kc, &mut apack);
                // SAFETY: row blocks [i0, i0+mc) are disjoint across
                // `blk`, and `raw` stays valid for the whole call.
                let cblk = unsafe { MatMut::from_raw_parts(raw.ptr.add(i0 * raw.stride + jc), mc, nc, raw.stride) };
                block_product(which, alpha, &apack, bpack, kc, mc, nc, cblk, None);
                recycle_local_vec(apack);
            });
            pc += kc;
        }
        jc += nc;
    }
    recycle_local_vec(bpack);
}

/// The symmetry-aware blocked SYRK body: writes `AᵀA` into `c`, computing
/// only micro-tiles that touch or lie below the diagonal and mirroring the
/// rest. Every computed element is bitwise identical to what
/// [`gemm_with_isa`]`(which, 1, Aᵀ, A, 0, c)` produces (same packing, same
/// KC blocking, same ascending-`k` microkernel order), so the mirrored
/// result equals the full product exactly while skipping ≈half the tile
/// arithmetic.
fn syrk_into_with_isa(which: Isa, a: MatRef<'_>, mut c: MatMut<'_>) {
    let (k, n) = (a.rows(), a.cols()); // contraction over rows; output n × n
    assert_eq!((c.rows(), c.cols()), (n, n), "syrk output must be n x n");
    for i in 0..n {
        c.row_mut(i).fill(0.0);
    }
    if n == 0 || k == 0 {
        return;
    }

    let threads = kernel_threads();
    let raw = RawC {
        ptr: c.as_mut_ptr(),
        stride: c.stride(),
    };
    let raw = &raw;
    let mut bpack = take_local_vec(NC.min(n).div_ceil(NR) * NR * KC.min(k));

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(a, Trans::No, pc, kc, jc, nc, &mut bpack);
            let bpack = &bpack[..nc.div_ceil(NR) * kc * NR];

            // Row blocks whose deepest row stays above column `jc` hold no
            // lower-triangle element of this column block: skip them whole
            // (no pack, no tiles).
            let nblocks = n.div_ceil(MC);
            let first = (jc + 1).saturating_sub(MC).div_ceil(MC);
            let active = nblocks - first;
            let rows_active = n - first * MC;
            let flops = rows_active as f64 * nc as f64 * kc as f64; // ≈half the full product
            let workers = ((flops / PAR_FLOP_THRESHOLD) as usize).clamp(1, threads);
            par_blocks(active, workers, |blk| {
                let i0 = (first + blk) * MC;
                let mc = MC.min(n - i0);
                // SAFETY: row blocks [i0, i0+mc) are disjoint across
                // `blk`, and `raw` stays valid for the whole call.
                let cblk = unsafe { MatMut::from_raw_parts(raw.ptr.add(i0 * raw.stride + jc), mc, nc, raw.stride) };
                if i0 >= jc && i0 + mc <= jc + nc {
                    // The output rows of this block are columns the B pack
                    // already holds: derive the A micro-panels from it and
                    // skip the pack_a pass entirely. This is the whole
                    // kernel whenever n ≤ NC — every CholeskyQR panel width.
                    block_product_packed_b(which, bpack, i0 - jc, kc, mc, nc, cblk, i0, jc);
                } else {
                    // Row block outside the packed column range (n > NC):
                    // fall back to a packed A operand.
                    let mut apack = take_local_vec(mc.div_ceil(MR) * MR * kc);
                    pack_a(a, Trans::Yes, i0, mc, pc, kc, &mut apack);
                    block_product(which, 1.0, &apack, bpack, kc, mc, nc, cblk, Some((i0, jc)));
                    recycle_local_vec(apack);
                }
            });
            pc += kc;
        }
        jc += nc;
    }
    recycle_local_vec(bpack);

    // Mirror the computed lower triangle onto the (partially skipped)
    // upper triangle; ascending-k accumulation makes the two bitwise equal
    // wherever both were computed, so this is exactly the naive contract.
    for i in 0..n {
        for j in 0..i {
            let v = c.at(i, j);
            c.set(j, i, v);
        }
    }
}

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm(&self, alpha: f64, a: MatRef<'_>, ta: Trans, b: MatRef<'_>, tb: Trans, beta: f64, c: MatMut<'_>) {
        gemm_with_isa(isa(), alpha, a, ta, b, tb, beta, c);
    }

    fn syrk_into(&self, a: MatRef<'_>, c: MatMut<'_>) {
        syrk_into_with_isa(isa(), a, c);
    }

    fn trsm_right_lower_trans(&self, l: MatRef<'_>, mut b: MatMut<'_>) {
        let n = l.rows();
        assert_eq!(l.cols(), n, "triangular factor must be square");
        assert_eq!(b.cols(), n, "rhs width must match triangular dimension");
        let mut j0 = 0;
        while j0 < n {
            let jb = TRSM_NB.min(n - j0);
            if j0 > 0 {
                let (solved, rest) = b.rb_mut().split_cols(j0);
                let (active, _) = rest.split_cols(jb);
                // B_j −= X_done · L[j-block, 0..j0]ᵀ  (that slab of Lᵀ).
                self.gemm(
                    -1.0,
                    solved.rb(),
                    Trans::No,
                    l.sub(j0, 0, jb, j0),
                    Trans::Yes,
                    1.0,
                    active,
                );
            }
            let (_, rest) = b.rb_mut().split_cols(j0);
            let (active, _) = rest.split_cols(jb);
            crate::trsm::trsm_right_lower_trans(l.sub(j0, j0, jb, jb), active);
            j0 += jb;
        }
    }

    fn trsm_right_upper(&self, u: MatRef<'_>, mut b: MatMut<'_>) {
        let n = u.rows();
        assert_eq!(u.cols(), n, "triangular factor must be square");
        assert_eq!(b.cols(), n, "rhs width must match triangular dimension");
        let mut j0 = 0;
        while j0 < n {
            let jb = TRSM_NB.min(n - j0);
            if j0 > 0 {
                let (solved, rest) = b.rb_mut().split_cols(j0);
                let (active, _) = rest.split_cols(jb);
                // B_j −= X_done · U[0..j0, j-block].
                self.gemm(
                    -1.0,
                    solved.rb(),
                    Trans::No,
                    u.sub(0, j0, j0, jb),
                    Trans::No,
                    1.0,
                    active,
                );
            }
            let (_, rest) = b.rb_mut().split_cols(j0);
            let (active, _) = rest.split_cols(jb);
            crate::trsm::trsm_right_upper(u.sub(j0, j0, jb, jb), active);
            j0 += jb;
        }
    }

    fn trsm_left_lower(&self, l: MatRef<'_>, mut b: MatMut<'_>) {
        let n = l.rows();
        assert_eq!(l.cols(), n, "triangular factor must be square");
        assert_eq!(b.rows(), n, "rhs height must match triangular dimension");
        let mut i0 = 0;
        while i0 < n {
            let ib = TRSM_NB.min(n - i0);
            if i0 > 0 {
                let (solved, rest) = b.rb_mut().split_rows(i0);
                let (active, _) = rest.split_rows(ib);
                // B_i −= L[i-block, 0..i0] · X_done.
                self.gemm(
                    -1.0,
                    l.sub(i0, 0, ib, i0),
                    Trans::No,
                    solved.rb(),
                    Trans::No,
                    1.0,
                    active,
                );
            }
            let (_, rest) = b.rb_mut().split_rows(i0);
            let (active, _) = rest.split_rows(ib);
            crate::trsm::trsm_left_lower(l.sub(i0, i0, ib, ib), active);
            i0 += ib;
        }
    }

    fn trsm_left_upper(&self, u: MatRef<'_>, mut b: MatMut<'_>) {
        let n = u.rows();
        assert_eq!(u.cols(), n, "triangular factor must be square");
        assert_eq!(b.rows(), n, "rhs height must match triangular dimension");
        // Backward substitution over row blocks, bottom-up.
        let nblocks = n.div_ceil(TRSM_NB);
        for blk in (0..nblocks).rev() {
            let i0 = blk * TRSM_NB;
            let ib = TRSM_NB.min(n - i0);
            let i1 = i0 + ib;
            if i1 < n {
                let (top, solved) = b.rb_mut().split_rows(i1);
                let (_, active) = top.split_rows(i0);
                // B_i −= U[i-block, i1..n] · X_done.
                self.gemm(
                    -1.0,
                    u.sub(i0, i1, ib, n - i1),
                    Trans::No,
                    solved.rb(),
                    Trans::No,
                    1.0,
                    active,
                );
            }
            let (top, _) = b.rb_mut().split_rows(i1);
            let (_, active) = top.split_rows(i0);
            crate::trsm::trsm_left_upper(u.sub(i0, i0, ib, ib), active);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn filled(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let x = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
                .wrapping_add(salt.wrapping_mul(0x94d0_49bb_1331_11eb));
            (x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
    }

    /// The headline bitwise contract, per ISA: the symmetry-aware SYRK and
    /// the full gemm must agree bit for bit under the *same* instruction
    /// schedule — scalar, AVX2, and AVX-512 each verify independently on
    /// hardware that has them.
    #[test]
    fn syrk_is_bitwise_gemm_under_every_available_isa() {
        for which in Isa::available() {
            for &(m, n) in &[
                (1usize, 1usize),
                (KC + 3, 2 * NR + 1),
                (KC - 1, MC + MR + 1),
                (37, NC.min(200) + 5),
                (64, MC),
                (5, 3),
            ] {
                let a = filled(m, n, 8 + m as u64);
                let mut via_syrk = Matrix::from_fn(n, n, |_, _| f64::NAN);
                syrk_into_with_isa(which, a.as_ref(), via_syrk.as_mut());
                let mut via_gemm = Matrix::zeros(n, n);
                gemm_with_isa(
                    which,
                    1.0,
                    a.as_ref(),
                    Trans::Yes,
                    a.as_ref(),
                    Trans::No,
                    0.0,
                    via_gemm.as_mut(),
                );
                for i in 0..n {
                    for j in 0..n {
                        assert_eq!(
                            via_syrk.get(i, j),
                            via_gemm.get(i, j),
                            "{which:?} {m}x{n}: syrk must be bitwise gemm at ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    /// Every ISA's syrk must also match the naive oracle numerically (the
    /// schedules contract FMA differently, so this is a tolerance check).
    #[test]
    fn syrk_matches_naive_oracle_under_every_available_isa() {
        for which in Isa::available() {
            let (m, n) = (KC + 7, MC + 9);
            let a = filled(m, n, 21);
            let want = crate::syrk::syrk(a.as_ref());
            let mut got = Matrix::zeros(n, n);
            syrk_into_with_isa(which, a.as_ref(), got.as_mut());
            for i in 0..n {
                for j in 0..n {
                    let (g, w) = (got.get(i, j), want.get(i, j));
                    assert!(
                        (g - w).abs() <= 1e-13 * (m as f64) * (1.0 + w.abs()),
                        "{which:?}: ({i},{j}) blocked {g} vs naive {w}"
                    );
                }
            }
        }
    }

    /// The row-block skip must agree with the unskipped sweep at every
    /// block boundary the `first`-block formula can produce.
    #[test]
    fn syrk_row_block_skip_boundaries() {
        // The last entry exceeds NC, exercising the pack_a fallback for row
        // blocks outside the packed column range.
        for n in [MC - 1, MC, MC + 1, 2 * MC + 3, 3 * MC, NC + NR + 4] {
            let a = filled(19, n, 31 + n as u64);
            let via_syrk = Blocked.syrk(a.as_ref());
            let via_gemm = Blocked.matmul(a.as_ref(), Trans::Yes, a.as_ref(), Trans::No);
            assert_eq!(via_syrk, via_gemm, "n={n}");
        }
    }

    /// Warm-thread gemm and syrk must not grow the thread-local arena.
    #[test]
    fn kernels_reach_zero_alloc_steady_state_on_one_thread() {
        let a = filled(KC + 5, 70, 3);
        let b = filled(70, 40, 4);
        let mut c = Matrix::zeros(KC + 5, 40);
        let mut g = Matrix::zeros(70, 70);
        // Warm up both kernels' pack-buffer sizes.
        Blocked.gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c.as_mut());
        Blocked.syrk_into(a.as_ref(), g.as_mut());
        let before = crate::workspace::with_thread_local(|ws| ws.heap_allocations());
        for _ in 0..4 {
            Blocked.gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c.as_mut());
            Blocked.syrk_into(a.as_ref(), g.as_mut());
        }
        let after = crate::workspace::with_thread_local(|ws| ws.heap_allocations());
        assert_eq!(before, after, "steady-state kernels must not allocate pack buffers");
    }

    #[test]
    fn syrk_empty_dims() {
        assert_eq!(Blocked.syrk(Matrix::zeros(0, 4).as_ref()), Matrix::zeros(4, 4));
        assert_eq!(Blocked.syrk(Matrix::zeros(4, 0).as_ref()), Matrix::zeros(0, 0));
    }
}
