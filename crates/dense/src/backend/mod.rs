//! Pluggable kernel backends for the BLAS-3 substrate.
//!
//! Every algorithm in the workspace — MM3D, CFR3D, the CQR family, the
//! ScaLAPACK-like `PGEQRF` baseline — bottoms out in local `gemm` / `syrk` /
//! `trsm` calls, so those three kernels are the hot path under the entire
//! simulated stack. This module makes the kernel implementation a runtime
//! choice behind the [`Backend`] trait:
//!
//! * [`Naive`] — the original straightforward loop nests (see
//!   [`mod@crate::gemm`], [`mod@crate::syrk`], [`mod@crate::trsm`]). Kept as the
//!   correctness oracle: simple enough to audit by eye, and the reference
//!   the property tests compare against.
//! * [`Blocked`] — a cache-blocked implementation in the BLIS/faer style:
//!   operands are packed into cache-sized panels (packing absorbs operand
//!   transposes — no up-front full-matrix transpose copy), a register-tiled
//!   `MR × NR` microkernel does the arithmetic, and independent row blocks
//!   of `C` can be processed by a small thread pool. Its `syrk` is
//!   *symmetry-aware*: upper-triangle micro-tiles are skipped (mirrored
//!   afterwards) and the `A`-side micro-panels are derived from the packed
//!   `B` buffer, while staying bitwise identical to the full
//!   `gemm(1, Aᵀ, A)`. Pack buffers come from the thread-local
//!   [`crate::workspace`] arena, so warm threads allocate nothing.
//!
//! Selection is threaded through the layers above by value as a
//! [`BackendKind`] (a `Copy` enum, so it can live inside `Copy` parameter
//! structs like `cacqr`'s `CfrParams`): `kind.get()` yields the
//! `&'static dyn Backend` to call. The process-wide default is
//! [`BackendKind::Blocked`], overridable with the `CACQR_BACKEND`
//! environment variable (`naive` or `blocked`; read once and cached so a
//! process never mixes defaults).
//!
//! # Determinism and cost-model invariance
//!
//! Both backends are bitwise deterministic: for every output element the
//! floating-point accumulation order is a fixed function of the operand
//! shapes (never of thread count or scheduling). The simulator's γ-cost
//! accounting is unaffected by backend choice by construction — flop counts
//! are charged from the closed-form conventions in [`crate::flops`], not
//! measured from kernel internals — so the `costmodel` exactness contract
//! holds under either backend.

pub mod blocked;
mod parallel;

pub use blocked::Blocked;
pub use parallel::{kernel_threads, max_threads, pool_worker_idle, thread_budget, PoolIdleGuard, PoolReservation};

use crate::gemm::Trans;
use crate::matrix::{MatMut, MatRef, Matrix};
use std::sync::OnceLock;

/// A sequential-kernel implementation: the BLAS-3 surface the distributed
/// algorithms compute with.
///
/// All methods must be bitwise deterministic given identical inputs; the
/// distributed replication invariants (identical `R` pieces across depth
/// layers, etc.) rely on it.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Short human-readable name (`"naive"`, `"blocked"`).
    fn name(&self) -> &'static str;

    /// `C ← α·op(A)·op(B) + β·C`.
    #[allow(clippy::too_many_arguments)] // the BLAS dgemm signature
    fn gemm(&self, alpha: f64, a: MatRef<'_>, ta: Trans, b: MatRef<'_>, tb: Trans, beta: f64, c: MatMut<'_>);

    /// Writes the full symmetric Gram matrix `AᵀA` into the caller-owned
    /// `n × n` buffer `c`, overwriting any previous contents.
    ///
    /// This is the allocation-free primitive the hot paths use (the buffer
    /// typically comes from a [`crate::workspace::Workspace`]).
    /// Implementations must produce bits identical to their own
    /// `gemm(1, Aᵀ, A)` — the 1D and CA CholeskyQR paths compute the Gram
    /// matrix through `syrk` and `gemm` respectively and the test suite
    /// asserts bitwise agreement between them.
    fn syrk_into(&self, a: MatRef<'_>, c: MatMut<'_>);

    /// Returns the full symmetric Gram matrix `AᵀA` as a fresh allocation
    /// (convenience wrapper over [`Backend::syrk_into`]).
    fn syrk(&self, a: MatRef<'_>) -> Matrix {
        let n = a.cols();
        let mut c = Matrix::zeros(n, n);
        self.syrk_into(a, c.as_mut());
        c
    }

    /// `C ← op(A)·op(B)` into a caller-owned buffer (the allocation-free
    /// sibling of [`Backend::matmul`]; bitwise identical to
    /// `gemm(1, A, B, 0, C)`).
    fn matmul_into(&self, a: MatRef<'_>, ta: Trans, b: MatRef<'_>, tb: Trans, c: MatMut<'_>) {
        self.gemm(1.0, a, ta, b, tb, 0.0, c);
    }

    /// Solves `X·Lᵀ = B` in place (`L` lower triangular).
    fn trsm_right_lower_trans(&self, l: MatRef<'_>, b: MatMut<'_>);

    /// Solves `X·U = B` in place (`U` upper triangular).
    fn trsm_right_upper(&self, u: MatRef<'_>, b: MatMut<'_>);

    /// Solves `L·X = B` in place (`L` lower triangular).
    fn trsm_left_lower(&self, l: MatRef<'_>, b: MatMut<'_>);

    /// Solves `U·X = B` in place (`U` upper triangular).
    fn trsm_left_upper(&self, u: MatRef<'_>, b: MatMut<'_>);

    /// Convenience: `op(A)·op(B)` as a new matrix.
    fn matmul(&self, a: MatRef<'_>, ta: Trans, b: MatRef<'_>, tb: Trans) -> Matrix {
        let m = match ta {
            Trans::No => a.rows(),
            Trans::Yes => a.cols(),
        };
        let n = match tb {
            Trans::No => b.cols(),
            Trans::Yes => b.rows(),
        };
        let mut c = Matrix::zeros(m, n);
        self.gemm(1.0, a, ta, b, tb, 0.0, c.as_mut());
        c
    }
}

/// The original loop-nest kernels, kept verbatim as the correctness oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct Naive;

impl Backend for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn gemm(&self, alpha: f64, a: MatRef<'_>, ta: Trans, b: MatRef<'_>, tb: Trans, beta: f64, c: MatMut<'_>) {
        crate::gemm::gemm(alpha, a, ta, b, tb, beta, c);
    }

    fn syrk_into(&self, a: MatRef<'_>, c: MatMut<'_>) {
        crate::syrk::syrk_into(a, c);
    }

    fn trsm_right_lower_trans(&self, l: MatRef<'_>, b: MatMut<'_>) {
        crate::trsm::trsm_right_lower_trans(l, b);
    }

    fn trsm_right_upper(&self, u: MatRef<'_>, b: MatMut<'_>) {
        crate::trsm::trsm_right_upper(u, b);
    }

    fn trsm_left_lower(&self, l: MatRef<'_>, b: MatMut<'_>) {
        crate::trsm::trsm_left_lower(l, b);
    }

    fn trsm_left_upper(&self, u: MatRef<'_>, b: MatMut<'_>) {
        crate::trsm::trsm_left_upper(u, b);
    }
}

static NAIVE: Naive = Naive;
static BLOCKED: Blocked = Blocked;

/// Value-level backend selector, cheap to copy and store in parameter
/// structs (`cacqr::CfrParams`, `baseline::PgeqrfConfig`, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The loop-nest oracle.
    Naive,
    /// The packed, cache-blocked, register-tiled implementation.
    Blocked,
}

impl BackendKind {
    /// Resolves to the backend implementation.
    pub fn get(self) -> &'static dyn Backend {
        match self {
            BackendKind::Naive => &NAIVE,
            BackendKind::Blocked => &BLOCKED,
        }
    }

    /// The process-wide default: `Blocked`, unless the `CACQR_BACKEND`
    /// environment variable says otherwise. Read once and cached, so every
    /// layer that falls back to the default agrees for the whole process —
    /// the bitwise cross-algorithm equalities depend on that.
    pub fn default_kind() -> BackendKind {
        static DEFAULT: OnceLock<BackendKind> = OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("CACQR_BACKEND").ok().as_deref() {
            Some(s) => s.parse().unwrap_or_else(|e: String| panic!("{e}")),
            None => BackendKind::Blocked,
        })
    }

    /// Every selectable backend, for sweeps in tests and benches.
    pub const ALL: [BackendKind; 2] = [BackendKind::Naive, BackendKind::Blocked];
}

impl Default for BackendKind {
    fn default() -> Self {
        BackendKind::default_kind()
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "naive" => Ok(BackendKind::Naive),
            "blocked" => Ok(BackendKind::Blocked),
            other => Err(format!("unknown backend {other:?} (expected \"naive\" or \"blocked\")")),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.get().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_str() {
        for kind in BackendKind::ALL {
            let parsed: BackendKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("fancy".parse::<BackendKind>().is_err());
    }

    #[test]
    fn default_is_cached_and_consistent() {
        assert_eq!(BackendKind::default_kind(), BackendKind::default_kind());
    }

    #[test]
    fn trait_matmul_matches_free_matmul() {
        let a = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64 * 0.31);
        let b = Matrix::from_fn(7, 4, |i, j| (i as f64 - j as f64) * 0.21);
        let via_trait = Naive.matmul(a.as_ref(), Trans::No, b.as_ref(), Trans::No);
        let via_free = crate::gemm::matmul(a.as_ref(), Trans::No, b.as_ref(), Trans::No);
        assert_eq!(via_trait, via_free);
    }
}
