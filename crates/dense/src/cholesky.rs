//! Cholesky factorization and triangular inversion.
//!
//! Three entry points:
//!
//! * [`potrf`] — blocked right-looking Cholesky, `A = LLᵀ` (lower factor).
//! * [`trtri_lower`] — recursive lower-triangular inverse `Y = L⁻¹`.
//! * [`cholinv`] — the paper's Algorithm 2: a *joint* recursion computing
//!   `L` and `Y = L⁻¹` together. This is the sequential kernel executed
//!   redundantly at the CFR3D base case (Algorithm 3, line 3), and the
//!   per-processor factorization of 1D-CQR (Algorithm 6, line 3).
//!
//! All routines report failure (a non-positive pivot, i.e. a numerically
//! non-SPD input) through [`CholeskyError`] instead of panicking — the
//! CholeskyQR drivers use this to detect loss of positive-definiteness in
//! `AᵀA` for ill-conditioned `A` and to trigger the shifted variant.

use crate::backend::{Backend, BackendKind};
use crate::gemm::Trans;
use crate::matrix::{MatMut, MatRef, Matrix};
use crate::workspace::Workspace;

/// Cholesky failure: the pivot at `index` was non-positive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CholeskyError {
    /// Global row/column index of the offending pivot.
    pub index: usize,
    /// Value of the pivot that should have been positive.
    pub pivot: f64,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} at index {}",
            self.pivot, self.index
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Unblocked lower Cholesky on a view, in place: on return the lower triangle
/// of `a` holds `L`; the strict upper triangle is zeroed.
fn potrf_unblocked(mut a: MatMut<'_>, index_offset: usize) -> Result<(), CholeskyError> {
    // Chaos faultpoint at the pivot site: an injected breakdown is
    // indistinguishable from a genuine loss of positive-definiteness to
    // everything upstream (suppressed inside SPMD regions; see
    // `crate::fault`). The sentinel pivot −∞ marks it as injected.
    crate::faultpoint!(crate::fault::CHOLESKY, {
        return Err(CholeskyError {
            index: index_offset,
            pivot: f64::NEG_INFINITY,
        });
    });
    let n = a.rows();
    for j in 0..n {
        let mut d = a.at(j, j);
        for k in 0..j {
            let v = a.at(j, k);
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(CholeskyError {
                index: index_offset + j,
                pivot: d,
            });
        }
        let ljj = d.sqrt();
        a.set(j, j, ljj);
        for i in (j + 1)..n {
            let mut s = a.at(i, j);
            // s -= Σ_{k<j} L[i][k]·L[j][k]
            for k in 0..j {
                s -= a.at(i, k) * a.at(j, k);
            }
            a.set(i, j, s / ljj);
        }
    }
    // Zero the strict upper triangle so the result is exactly L.
    for i in 0..n {
        let row = a.row_mut(i);
        for v in &mut row[i + 1..] {
            *v = 0.0;
        }
    }
    Ok(())
}

/// Blocked right-looking Cholesky: factors `A = LLᵀ` in place, returning the
/// lower factor in `a` (strict upper triangle zeroed). Uses the process
/// default backend ([`BackendKind::default_kind`]).
pub fn potrf(a: MatMut<'_>) -> Result<(), CholeskyError> {
    potrf_with(a, BackendKind::default_kind().get())
}

/// [`potrf`] with an explicit kernel backend for the panel solve and
/// trailing update.
pub fn potrf_with(mut a: MatMut<'_>, backend: &dyn Backend) -> Result<(), CholeskyError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "Cholesky input must be square");
    const NB: usize = 64;
    if n <= NB {
        return potrf_unblocked(a, 0);
    }
    let mut k = 0;
    while k < n {
        let nb = NB.min(n - k);
        // Factor diagonal block.
        potrf_unblocked(a.rb_mut().sub(k, k, nb, nb), k)?;
        if k + nb < n {
            let rest = n - k - nb;
            // Panel solve: A[k+nb.., k..k+nb] ← A[k+nb.., k..k+nb] · L[k,k]⁻ᵀ
            let (diag_rows, below) = a.rb_mut().sub(k, k, n - k, nb).split_rows(nb);
            backend.trsm_right_lower_trans(diag_rows.rb(), below);
            // Trailing update: A22 ← A22 − L21·L21ᵀ (lower triangle suffices,
            // but a full gemm keeps the kernel simple; the strict upper part
            // of the trailing block is rewritten symmetrically).
            let l21 = a.rb().sub(k + nb, k, rest, nb);
            let l21_copy = l21.to_owned();
            let a22 = a.rb_mut().sub(k + nb, k + nb, rest, rest);
            backend.gemm(
                -1.0,
                l21_copy.as_ref(),
                Trans::No,
                l21_copy.as_ref(),
                Trans::Yes,
                1.0,
                a22,
            );
        }
        k += nb;
    }
    // The block loop only zeroes the strict upper triangle inside each
    // diagonal block; clear the rest so the result is exactly L.
    for i in 0..n {
        let row = a.row_mut(i);
        for v in &mut row[i + 1..] {
            *v = 0.0;
        }
    }
    Ok(())
}

/// [`potrf_with`] drawing the panel copy from a [`Workspace`] arena.
///
/// The blocked trailing update needs a stable copy of the just-solved `L21`
/// panel (the gemm reads and writes overlapping storage otherwise);
/// [`potrf_with`] allocates that copy per call, which is fine for one-shot
/// factorizations but breaks the streaming path's zero-steady-state-allocation
/// contract. This variant takes the copy from `ws` and recycles it, so warm
/// calls perform no heap allocations.
pub fn potrf_ws(mut a: MatMut<'_>, backend: &dyn Backend, ws: &mut Workspace) -> Result<(), CholeskyError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "Cholesky input must be square");
    const NB: usize = 64;
    if n <= NB {
        return potrf_unblocked(a, 0);
    }
    let mut k = 0;
    while k < n {
        let nb = NB.min(n - k);
        potrf_unblocked(a.rb_mut().sub(k, k, nb, nb), k)?;
        if k + nb < n {
            let rest = n - k - nb;
            let (diag_rows, below) = a.rb_mut().sub(k, k, n - k, nb).split_rows(nb);
            backend.trsm_right_lower_trans(diag_rows.rb(), below);
            let l21_copy = ws.take_copy(a.rb().sub(k + nb, k, rest, nb));
            let a22 = a.rb_mut().sub(k + nb, k + nb, rest, rest);
            backend.gemm(
                -1.0,
                l21_copy.as_ref(),
                Trans::No,
                l21_copy.as_ref(),
                Trans::Yes,
                1.0,
                a22,
            );
            ws.recycle(l21_copy);
        }
        k += nb;
    }
    for i in 0..n {
        let row = a.row_mut(i);
        for v in &mut row[i + 1..] {
            *v = 0.0;
        }
    }
    Ok(())
}

/// Unblocked inverse of a lower-triangular matrix by forward substitution.
fn trtri_unblocked(l: MatRef<'_>) -> Matrix {
    let n = l.rows();
    let mut y = Matrix::zeros(n, n);
    for j in 0..n {
        y.set(j, j, 1.0 / l.at(j, j));
        for i in (j + 1)..n {
            let mut s = 0.0;
            for k in j..i {
                s += l.at(i, k) * y.get(k, j);
            }
            y.set(i, j, -s / l.at(i, i));
        }
    }
    y
}

/// Inverse of a lower-triangular matrix: `Y = L⁻¹`.
///
/// Recursive blocked algorithm mirroring the paper's `Inv` recursion
/// (§II-D): `Y₁₁ = L₁₁⁻¹`, `Y₂₂ = L₂₂⁻¹`, `Y₂₁ = −Y₂₂·L₂₁·Y₁₁`.
pub fn trtri_lower(l: MatRef<'_>) -> Matrix {
    trtri_lower_with(l, BackendKind::default_kind().get())
}

/// [`trtri_lower`] with an explicit kernel backend for the off-diagonal
/// multiplies.
pub fn trtri_lower_with(l: MatRef<'_>, backend: &dyn Backend) -> Matrix {
    let n = l.rows();
    assert_eq!(l.cols(), n, "triangular inverse input must be square");
    const NB: usize = 32;
    if n <= NB {
        return trtri_unblocked(l);
    }
    let h = n / 2;
    let y11 = trtri_lower_with(l.sub(0, 0, h, h), backend);
    let y22 = trtri_lower_with(l.sub(h, h, n - h, n - h), backend);
    // Y21 = -Y22 · L21 · Y11
    let t = backend.matmul(l.sub(h, 0, n - h, h), Trans::No, y11.as_ref(), Trans::No);
    let mut y = Matrix::zeros(n, n);
    y.view_mut(0, 0, h, h).copy_from(y11.as_ref());
    y.view_mut(h, h, n - h, n - h).copy_from(y22.as_ref());
    backend.gemm(
        -1.0,
        y22.as_ref(),
        Trans::No,
        t.as_ref(),
        Trans::No,
        0.0,
        y.view_mut(h, 0, n - h, h),
    );
    y
}

/// The paper's Algorithm 2 (`CholInv`): given SPD `A`, returns `(L, Y)` with
/// `A = LLᵀ` and `Y = L⁻¹`, computed by a single joint recursion.
///
/// ```text
/// L11, Y11 ← CholInv(A11)
/// L21 ← A21·Y11ᵀ
/// L22, Y22 ← CholInv(A22 − L21·L21ᵀ)
/// Y21 ← −Y22·L21·Y11
/// ```
///
/// This sequential routine is what every processor runs redundantly at the
/// CFR3D base case; the distributed CFR3D (crate `cacqr`) parallelizes the
/// same recursion with MM3D in place of the local multiplies.
pub fn cholinv(a: MatRef<'_>) -> Result<(Matrix, Matrix), CholeskyError> {
    cholinv_with(a, BackendKind::default_kind().get())
}

/// [`cholinv`] with an explicit kernel backend for the panel and inverse
/// multiplies. Every distributed caller threads its configured backend here
/// so redundant base-case factorizations stay bitwise replicated.
pub fn cholinv_with(a: MatRef<'_>, backend: &dyn Backend) -> Result<(Matrix, Matrix), CholeskyError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "CholInv input must be square");
    cholinv_inner(a, 0, backend)
}

fn cholinv_inner(a: MatRef<'_>, index_offset: usize, backend: &dyn Backend) -> Result<(Matrix, Matrix), CholeskyError> {
    let n = a.rows();
    const NB: usize = 32;
    if n <= NB {
        let mut l = a.to_owned();
        potrf_unblocked(l.as_mut(), index_offset)?;
        let y = trtri_unblocked(l.as_ref());
        return Ok((l, y));
    }
    let h = n / 2;
    let (l11, y11) = cholinv_inner(a.sub(0, 0, h, h), index_offset, backend)?;
    // L21 = A21 · Y11ᵀ
    let l21 = backend.matmul(a.sub(h, 0, n - h, h), Trans::No, y11.as_ref(), Trans::Yes);
    // S = A22 − L21·L21ᵀ
    let mut s = a.sub(h, h, n - h, n - h).to_owned();
    backend.gemm(-1.0, l21.as_ref(), Trans::No, l21.as_ref(), Trans::Yes, 1.0, s.as_mut());
    let (l22, y22) = cholinv_inner(s.as_ref(), index_offset + h, backend)?;
    // Y21 = −Y22·(L21·Y11)
    let t = backend.matmul(l21.as_ref(), Trans::No, y11.as_ref(), Trans::No);
    let mut l = Matrix::zeros(n, n);
    let mut y = Matrix::zeros(n, n);
    l.view_mut(0, 0, h, h).copy_from(l11.as_ref());
    l.view_mut(h, 0, n - h, h).copy_from(l21.as_ref());
    l.view_mut(h, h, n - h, n - h).copy_from(l22.as_ref());
    y.view_mut(0, 0, h, h).copy_from(y11.as_ref());
    y.view_mut(h, h, n - h, n - h).copy_from(y22.as_ref());
    backend.gemm(
        -1.0,
        y22.as_ref(),
        Trans::No,
        t.as_ref(),
        Trans::No,
        0.0,
        y.view_mut(h, 0, n - h, h),
    );
    Ok((l, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Trans};
    use crate::norms::{frobenius, max_abs};

    /// Builds a well-conditioned SPD matrix: AᵀA + n·I of a seeded pseudo-random A.
    fn spd(n: usize) -> Matrix {
        let a = Matrix::from_fn(n, n, |i, j| ((i * n + j) as f64 * 0.61).sin());
        let mut s = crate::syrk::syrk(a.as_ref());
        for i in 0..n {
            let v = s.get(i, i);
            s.set(i, i, v + n as f64);
        }
        s
    }

    fn reconstruct_err(a: &Matrix, l: &Matrix) -> f64 {
        let llt = matmul(l.as_ref(), Trans::No, l.as_ref(), Trans::Yes);
        let mut d = a.clone();
        for (x, y) in d.data_mut().iter_mut().zip(llt.data()) {
            *x -= y;
        }
        frobenius(d.as_ref()) / frobenius(a.as_ref())
    }

    #[test]
    fn potrf_reconstructs_small() {
        let a = spd(17);
        let mut l = a.clone();
        potrf(l.as_mut()).unwrap();
        assert!(reconstruct_err(&a, &l) < 1e-13);
    }

    #[test]
    fn potrf_reconstructs_blocked() {
        let a = spd(193); // crosses several 64-blocks, non-multiple size
        let mut l = a.clone();
        potrf(l.as_mut()).unwrap();
        assert!(reconstruct_err(&a, &l) < 1e-12);
    }

    #[test]
    fn potrf_ws_matches_potrf_bitwise_and_stays_arena_balanced() {
        let a = spd(193); // blocked path: several 64-blocks plus a ragged tail
        let mut want = a.clone();
        potrf(want.as_mut()).unwrap();
        let backend = BackendKind::default_kind().get();
        let mut ws = Workspace::new();
        let mut got = a.clone();
        potrf_ws(got.as_mut(), backend, &mut ws).unwrap();
        assert_eq!(want.data(), got.data(), "arena copy must not change the arithmetic");
        assert_eq!(ws.takes(), ws.recycles(), "every take recycled");
        let cold = ws.heap_allocations();
        let mut warm = a.clone();
        potrf_ws(warm.as_mut(), backend, &mut ws).unwrap();
        assert_eq!(ws.heap_allocations(), cold, "warm call draws entirely from the arena");
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut a = Matrix::identity(4);
        a.set(2, 2, -1.0);
        let err = potrf(a.as_mut()).unwrap_err();
        assert_eq!(err.index, 2);
        assert!(err.pivot <= 0.0);
    }

    #[test]
    fn trtri_inverts() {
        let a = spd(48);
        let mut l = a.clone();
        potrf(l.as_mut()).unwrap();
        let y = trtri_lower(l.as_ref());
        let prod = matmul(y.as_ref(), Trans::No, l.as_ref(), Trans::No);
        let mut d = prod.clone();
        for i in 0..48 {
            let v = d.get(i, i);
            d.set(i, i, v - 1.0);
        }
        assert!(max_abs(d.as_ref()) < 1e-12);
    }

    #[test]
    fn cholinv_agrees_with_potrf_trtri() {
        let a = spd(70); // odd split sizes exercise the n-h paths
        let (l, y) = cholinv(a.as_ref()).unwrap();
        assert!(reconstruct_err(&a, &l) < 1e-12);
        let mut l2 = a.clone();
        potrf(l2.as_mut()).unwrap();
        let y2 = trtri_lower(l2.as_ref());
        for (u, v) in l.data().iter().zip(l2.data()) {
            assert!((u - v).abs() < 1e-11);
        }
        for (u, v) in y.data().iter().zip(y2.data()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn cholinv_error_index_is_global() {
        // SPD leading block, failure deep in the trailing part.
        let n = 40;
        let mut a = Matrix::identity(n);
        a.set(37, 37, -5.0);
        let err = cholinv(a.as_ref()).unwrap_err();
        assert_eq!(err.index, 37);
    }

    #[test]
    fn factor_is_exactly_lower_triangular() {
        let a = spd(33);
        let (l, y) = cholinv(a.as_ref()).unwrap();
        for i in 0..33 {
            for j in (i + 1)..33 {
                assert_eq!(l.get(i, j), 0.0);
                assert_eq!(y.get(i, j), 0.0);
            }
        }
    }
}
