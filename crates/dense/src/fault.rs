//! Deterministic fault injection for chaos testing.
//!
//! A *faultpoint* is a named site in the code (`cholesky`, `collective`,
//! `dequeue`, `arena`, `worker`) that consults this module before doing its
//! real work. When no schedule is installed the check is a single relaxed
//! atomic load and a predicted branch — cheap enough to leave compiled into
//! release builds, which is the point: chaos CI exercises the exact binary
//! that ships.
//!
//! # Schedule format
//!
//! Schedules come from the `CACQR_FAULTS` environment variable (read once,
//! lazily) or programmatically via [`install`]:
//!
//! ```text
//! CACQR_FAULTS="seed=42;delay_us=50;collective=0.05;dequeue=0.1;cholesky=0.2"
//! ```
//!
//! `seed` (default 0) keys the pseudo-random firing decisions; `delay_us`
//! (default 20) is the stall injected by delay-kind sites; every other
//! `key=rate` pair names a site and its firing probability in `[0, 1]`.
//! Unknown site names are a hard error so typos cannot silently disable a
//! chaos schedule.
//!
//! # Determinism
//!
//! Firing is a pure function of `(seed, site, hit-index)` where the hit
//! index is a per-thread counter: the k-th time a given thread reaches a
//! given site, the decision is always the same for the same seed. SPMD rank
//! bodies run on threads spawned fresh per factorization, so every rank of
//! every run replays an identical schedule — there is no cross-thread
//! counter to race on.
//!
//! # Site kinds
//!
//! Sites are either *delay* sites (`collective`, `dequeue`, `arena` — they
//! stall the thread for `delay_us`, perturbing interleavings without
//! changing results) or *error* sites (`cholesky` injects a typed
//! [`CholeskyError`](crate::CholeskyError) breakdown; `worker` makes the
//! service worker panic inside its isolation boundary). Error sites are
//! suppressed inside SPMD regions (see [`spmd_scope`]): a single rank
//! erroring out of a collective would deadlock its peers, which is a bug in
//! the harness, not the code under test. Delay sites fire everywhere.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Once, RwLock};
use std::time::Duration;

/// Cholesky pivot site (error kind): injects a typed breakdown.
pub const CHOLESKY: &str = "cholesky";
/// Collective exchange site (delay kind): stalls a rank mid-exchange.
pub const COLLECTIVE: &str = "collective";
/// Service worker dequeue site (delay kind): stalls a worker between jobs.
pub const DEQUEUE: &str = "dequeue";
/// Arena checkout site (delay kind): stalls a workspace checkout.
pub const ARENA: &str = "arena";
/// Service worker execution site (error kind): panics inside the worker's
/// `catch_unwind` boundary, exercising panic isolation end to end.
pub const WORKER: &str = "worker";

const SITES: &[&str] = &[CHOLESKY, COLLECTIVE, DEQUEUE, ARENA, WORKER];
const ERROR_SITES: &[&str] = &[CHOLESKY, WORKER];

const DEFAULT_DELAY_US: u64 = 20;

/// A parsed fault schedule: seed, injected delay, and per-site firing rates.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    delay: Duration,
    rates: [f64; SITES.len()],
}

impl FaultPlan {
    /// An empty schedule (seed 0, default delay, all rates zero). Build it
    /// up with [`FaultPlan::site`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay: Duration::from_micros(DEFAULT_DELAY_US),
            rates: [0.0; SITES.len()],
        }
    }

    /// Set a site's firing rate. Panics on unknown site names or rates
    /// outside `[0, 1]` — schedules are test infrastructure and deserve
    /// loud failure.
    pub fn site(mut self, name: &str, rate: f64) -> FaultPlan {
        let idx = site_index(name).unwrap_or_else(|| panic!("unknown fault site `{name}`"));
        assert!((0.0..=1.0).contains(&rate), "fault rate {rate} outside [0, 1]");
        self.rates[idx] = rate;
        self
    }

    /// Set the stall injected by delay-kind sites.
    pub fn delay(mut self, delay: Duration) -> FaultPlan {
        self.delay = delay;
        self
    }

    /// Parse the `CACQR_FAULTS` schedule syntax:
    /// `seed=42;delay_us=50;site=rate;...`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for field in spec.split(';') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault field `{field}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad fault seed `{value}`"))?;
                }
                "delay_us" => {
                    let us: u64 = value.parse().map_err(|_| format!("bad fault delay_us `{value}`"))?;
                    plan.delay = Duration::from_micros(us);
                }
                site => {
                    let idx = site_index(site).ok_or_else(|| format!("unknown fault site `{site}`"))?;
                    let rate: f64 = value.parse().map_err(|_| format!("bad fault rate `{value}`"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fault rate {rate} for `{site}` outside [0, 1]"));
                    }
                    plan.rates[idx] = rate;
                }
            }
        }
        Ok(plan)
    }

    fn is_empty(&self) -> bool {
        self.rates.iter().all(|&r| r == 0.0)
    }
}

fn site_index(name: &str) -> Option<usize> {
    SITES.iter().position(|&s| s == name)
}

fn is_error_site(idx: usize) -> bool {
    ERROR_SITES.contains(&SITES[idx])
}

// Global state: 0 = env not consulted yet, 1 = disabled, 2 = enabled. The
// fast path is a single relaxed load of this byte.
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static ENV_INIT: Once = Once::new();
/// Bumped on every `install` so surviving threads discard stale hit counters.
static GENERATION: AtomicU64 = AtomicU64::new(0);

struct Installed {
    plan: FaultPlan,
    injected: [AtomicU64; SITES.len()],
}

static PLAN: RwLock<Option<Installed>> = RwLock::new(None);

thread_local! {
    // (generation, per-site hit counters) — see module docs on determinism.
    static HITS: RefCell<(u64, [u64; SITES.len()])> = const { RefCell::new((0, [0; SITES.len()])) };
    static SPMD_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Install a schedule programmatically (tests), or `None` to disable all
/// faultpoints. Overrides any `CACQR_FAULTS` environment schedule for the
/// rest of the process lifetime and resets injection counters.
pub fn install(plan: Option<FaultPlan>) {
    let enabled = plan.as_ref().is_some_and(|p| !p.is_empty());
    let mut guard = PLAN.write().unwrap();
    *guard = plan.map(|plan| Installed {
        plan,
        injected: [(); SITES.len()].map(|()| AtomicU64::new(0)),
    });
    GENERATION.fetch_add(1, Ordering::Relaxed);
    STATE.store(if enabled { STATE_ON } else { STATE_OFF }, Ordering::Release);
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        // `install` may have run first; it wins over the environment.
        if STATE.load(Ordering::Acquire) != STATE_UNINIT {
            return;
        }
        match std::env::var("CACQR_FAULTS") {
            Ok(spec) => {
                let plan = FaultPlan::parse(&spec).unwrap_or_else(|err| panic!("CACQR_FAULTS=\"{spec}\": {err}"));
                install(Some(plan));
            }
            Err(_) => STATE.store(STATE_OFF, Ordering::Release),
        }
    });
}

/// True when a fault schedule is active. The cheap gate callers may use to
/// skip building diagnostic context.
#[inline]
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_OFF => false,
        STATE_ON => true,
        _ => {
            init_from_env();
            STATE.load(Ordering::Relaxed) == STATE_ON
        }
    }
}

/// Consult the schedule at a named site. Returns `true` when the fault
/// fires. Deterministic per `(seed, site, thread hit index)`; error-kind
/// sites never fire inside an SPMD region (see [`spmd_scope`]).
#[inline]
pub fn should_fire(site: &str) -> bool {
    if !active() {
        return false;
    }
    should_fire_slow(site)
}

#[cold]
fn should_fire_slow(site: &str) -> bool {
    let Some(idx) = site_index(site) else {
        return false;
    };
    if is_error_site(idx) && SPMD_DEPTH.with(|d| d.get() > 0) {
        return false;
    }
    let guard = PLAN.read().unwrap();
    let Some(installed) = guard.as_ref() else {
        return false;
    };
    let rate = installed.plan.rates[idx];
    if rate <= 0.0 {
        return false;
    }
    let generation = GENERATION.load(Ordering::Relaxed);
    let hit = HITS.with(|h| {
        let mut h = h.borrow_mut();
        if h.0 != generation {
            *h = (generation, [0; SITES.len()]);
        }
        let hit = h.1[idx];
        h.1[idx] += 1;
        hit
    });
    let draw = unit_draw(installed.plan.seed, idx as u64, hit);
    let fire = draw < rate;
    if fire {
        installed.injected[idx].fetch_add(1, Ordering::Relaxed);
    }
    fire
}

/// SplitMix64-style mix of (seed, site, hit) mapped to a uniform draw in
/// `[0, 1)`.
fn unit_draw(seed: u64, site: u64, hit: u64) -> f64 {
    let mut z = seed
        .wrapping_add(site.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(hit.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Delay-kind faultpoint: stall the thread for the schedule's `delay_us`
/// when the site fires. No-op (one atomic load) when disabled.
#[inline]
pub fn maybe_delay(site: &str) {
    if !active() {
        return;
    }
    if should_fire_slow(site) {
        let delay = PLAN.read().unwrap().as_ref().map(|p| p.plan.delay);
        if let Some(delay) = delay {
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
    }
}

/// How many times `site` has fired under the currently installed schedule.
pub fn injected(site: &str) -> u64 {
    let Some(idx) = site_index(site) else {
        return 0;
    };
    PLAN.read()
        .unwrap()
        .as_ref()
        .map_or(0, |p| p.injected[idx].load(Ordering::Relaxed))
}

/// Total fires across all sites under the currently installed schedule.
pub fn injected_total() -> u64 {
    PLAN.read()
        .unwrap()
        .as_ref()
        .map_or(0, |p| p.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum())
}

/// RAII marker for an SPMD region: while alive on this thread, error-kind
/// sites are suppressed (a lone rank erroring mid-collective would deadlock
/// its peers) while delay-kind sites keep firing. Runtimes install this
/// around rank bodies; it nests.
pub struct SpmdScope {
    // !Send: the counter is thread-local.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Enter an SPMD region on this thread. See [`SpmdScope`].
pub fn spmd_scope() -> SpmdScope {
    SPMD_DEPTH.with(|d| d.set(d.get() + 1));
    SpmdScope {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for SpmdScope {
    fn drop(&mut self) {
        SPMD_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Check a faultpoint by site name; with a second argument, run that
/// expression (e.g. `return Err(...)` or `panic!(...)`) when it fires.
/// Compiles to one relaxed atomic load and a predicted branch when no
/// schedule is installed.
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        $crate::fault::should_fire($site)
    };
    ($site:expr, $body:expr) => {
        if $crate::fault::should_fire($site) {
            $body
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plan/state globals are process-wide; unit tests here serialize on
    // a lock and restore the disabled state when done.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_plan(plan: FaultPlan, body: impl FnOnce()) {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(Some(plan));
        body();
        install(None);
    }

    #[test]
    fn parse_round_trips_the_documented_format() {
        let plan = FaultPlan::parse("seed=42;delay_us=50;collective=0.05;cholesky=0.2").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.delay, Duration::from_micros(50));
        assert_eq!(plan.rates[site_index(COLLECTIVE).unwrap()], 0.05);
        assert_eq!(plan.rates[site_index(CHOLESKY).unwrap()], 0.2);
        assert_eq!(plan.rates[site_index(ARENA).unwrap()], 0.0);
        assert!(FaultPlan::parse("bogus_site=0.5").is_err());
        assert!(FaultPlan::parse("cholesky=1.5").is_err());
        assert!(FaultPlan::parse("cholesky").is_err());
    }

    #[test]
    fn schedule_is_deterministic_per_thread_and_seed() {
        let sample = |seed: u64| -> Vec<bool> {
            let mut fired = Vec::new();
            with_plan(FaultPlan::new(seed).site(CHOLESKY, 0.3), || {
                fired = (0..64).map(|_| should_fire(CHOLESKY)).collect();
            });
            fired
        };
        let a = sample(7);
        let b = sample(7);
        let c = sample(8);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds must differ");
        let hits = a.iter().filter(|&&f| f).count();
        assert!(hits > 5 && hits < 30, "rate 0.3 over 64 draws fired {hits} times");
    }

    #[test]
    fn disabled_sites_and_spmd_regions_suppress_correctly() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(None);
        assert!(!active());
        assert!(!should_fire(CHOLESKY));

        install(Some(FaultPlan::new(1).site(CHOLESKY, 1.0).site(ARENA, 1.0)));
        assert!(should_fire(CHOLESKY));
        assert_eq!(injected(CHOLESKY), 1);
        {
            let _spmd = spmd_scope();
            assert!(!should_fire(CHOLESKY), "error sites must not fire inside SPMD");
            assert!(should_fire(ARENA), "delay sites keep firing inside SPMD");
        }
        assert!(should_fire(CHOLESKY), "suppression ends with the scope");
        assert!(injected_total() >= 3);
        install(None);
    }

    #[test]
    fn faultpoint_macro_fires_the_armed_expression() {
        let mut hit = false;
        with_plan(FaultPlan::new(3).site(WORKER, 1.0), || {
            faultpoint!(WORKER, hit = true);
        });
        assert!(hit);
        assert!(!faultpoint!(WORKER), "disabled again after the test plan");
    }
}
