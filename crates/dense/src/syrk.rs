//! Symmetric rank-k update: `C = AᵀA`.
//!
//! This is the Gram-matrix kernel at the heart of CholeskyQR: each processor
//! computes `AᵀA` of its local panel (paper Algorithm 6 line 1 and
//! Algorithm 8 line 2). Only the lower triangle is computed; the result is
//! mirrored so callers get a full symmetric matrix (the distributed reduction
//! then operates on plain dense buffers).
//!
//! These loop nests are the **bitwise oracle** for the blocked backend's
//! symmetry-aware SYRK ([`crate::backend::Blocked`]): simple enough to audit
//! by eye, with a straight-line inner loop (no data-dependent branches) so
//! the accumulation order — ascending `k`, then ascending `j` within a row —
//! is a pure function of the operand shape.

use crate::matrix::{MatMut, MatRef, Matrix};

/// Writes the full symmetric matrix `AᵀA` into `c` (`n × n` for `A` of
/// shape `m × n`), overwriting any previous contents.
///
/// Computes the lower triangle with a cache-friendly outer-product sweep over
/// the rows of `A`, then mirrors it. The flop convention charged for this
/// kernel is `m·n²` (see [`crate::flops::syrk`]) even though the dense sweep
/// performs `~m·n²` multiply-adds on the symmetric half.
pub fn syrk_into(a: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!((c.rows(), c.cols()), (n, n), "syrk output must be n x n");
    c.fill(0.0);
    // Accumulate lower triangle: C[i][j] += A[k][i] * A[k][j], j <= i.
    // Deliberately branch-free: a zero-operand fast path only helps
    // pathological sparse inputs and defeats pipelining on dense panels.
    for k in 0..m {
        let row = a.row(k);
        for i in 0..n {
            let aki = row[i];
            let dst = &mut c.row_mut(i)[..i + 1];
            for (d, &v) in dst.iter_mut().zip(row) {
                *d += aki * v;
            }
        }
    }
    // Mirror to upper triangle.
    for i in 0..n {
        for j in 0..i {
            let v = c.at(i, j);
            c.set(j, i, v);
        }
    }
}

/// Returns the full symmetric matrix `AᵀA` as a fresh allocation
/// (convenience wrapper over [`syrk_into`]).
pub fn syrk(a: MatRef<'_>) -> Matrix {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    syrk_into(a, c.as_mut());
    c
}

/// The gemm-based Gram path the symmetry-aware blocked SYRK replaced:
/// `C ← gemm(1, Aᵀ, A)` followed by the lower→upper mirror.
///
/// Kept as the **shared comparison baseline** for the `syrk` criterion
/// bench and the perf gate's `syrk-*` entries — both gates must time the
/// identical reference or the recorded ≥1.5× acceptance bar drifts. By the
/// ascending-`k` accumulation argument this produces bits identical to the
/// backend's own `syrk`, just without the tile skipping.
pub fn syrk_via_gemm(backend: &dyn crate::Backend, a: MatRef<'_>, mut c: MatMut<'_>) {
    use crate::gemm::Trans;
    let n = a.cols();
    assert_eq!((c.rows(), c.cols()), (n, n), "syrk output must be n x n");
    backend.gemm(1.0, a, Trans::Yes, a, Trans::No, 0.0, c.rb_mut());
    for i in 0..n {
        for j in 0..i {
            let v = c.at(i, j);
            c.set(j, i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Trans};
    use crate::matrix::Matrix;

    #[test]
    fn matches_gemm_ata() {
        let a = Matrix::from_fn(11, 5, |i, j| ((i * 5 + j) as f64 * 0.7).sin());
        let c = syrk(a.as_ref());
        let reference = matmul(a.as_ref(), Trans::Yes, a.as_ref(), Trans::No);
        for i in 0..5 {
            for j in 0..5 {
                assert!((c.get(i, j) - reference.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn result_is_exactly_symmetric() {
        let a = Matrix::from_fn(9, 6, |i, j| (i as f64 * 1.3 - j as f64 * 0.7).cos());
        let c = syrk(a.as_ref());
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(c.get(i, j), c.get(j, i), "bitwise symmetry expected");
            }
        }
    }

    #[test]
    fn gram_of_orthonormal_is_identity() {
        // Columns of the identity embedded in a taller matrix are orthonormal.
        let a = Matrix::from_fn(8, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let c = syrk(a.as_ref());
        assert_eq!(c, Matrix::identity(3));
    }

    #[test]
    fn empty_rows() {
        let a = Matrix::zeros(0, 4);
        assert_eq!(syrk(a.as_ref()), Matrix::zeros(4, 4));
    }

    #[test]
    fn into_variant_overwrites_stale_output() {
        let a = Matrix::from_fn(7, 4, |i, j| ((i + 3 * j) as f64 * 0.31).sin());
        let mut stale = Matrix::from_fn(4, 4, |_, _| f64::NAN);
        syrk_into(a.as_ref(), stale.as_mut());
        assert_eq!(stale, syrk(a.as_ref()), "syrk_into must ignore prior contents");
    }
}
