//! Symmetric rank-k update: `C = AᵀA`.
//!
//! This is the Gram-matrix kernel at the heart of CholeskyQR: each processor
//! computes `AᵀA` of its local panel (paper Algorithm 6 line 1 and
//! Algorithm 8 line 2). Only the lower triangle is computed; the result is
//! mirrored so callers get a full symmetric matrix (the distributed reduction
//! then operates on plain dense buffers).

use crate::matrix::{MatRef, Matrix};

/// Returns the full symmetric matrix `AᵀA` (`n × n` for `A` of shape `m × n`).
///
/// Computes the lower triangle with a cache-friendly outer-product sweep over
/// the rows of `A`, then mirrors it. The flop convention charged for this
/// kernel is `m·n²` (see [`crate::flops::syrk`]).
pub fn syrk(a: MatRef<'_>) -> Matrix {
    let (m, n) = (a.rows(), a.cols());
    let mut data = vec![0.0f64; n * n];
    // Accumulate lower triangle: C[i][j] += A[k][i] * A[k][j], j <= i.
    for k in 0..m {
        let row = a.row(k);
        for i in 0..n {
            let aki = row[i];
            if aki == 0.0 {
                continue;
            }
            let dst = &mut data[i * n..i * n + i + 1];
            for (j, d) in dst.iter_mut().enumerate() {
                *d += aki * row[j];
            }
        }
    }
    // Mirror to upper triangle.
    for i in 0..n {
        for j in 0..i {
            data[j * n + i] = data[i * n + j];
        }
    }
    Matrix::from_vec(n, n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Trans};
    use crate::matrix::Matrix;

    #[test]
    fn matches_gemm_ata() {
        let a = Matrix::from_fn(11, 5, |i, j| ((i * 5 + j) as f64 * 0.7).sin());
        let c = syrk(a.as_ref());
        let reference = matmul(a.as_ref(), Trans::Yes, a.as_ref(), Trans::No);
        for i in 0..5 {
            for j in 0..5 {
                assert!((c.get(i, j) - reference.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn result_is_exactly_symmetric() {
        let a = Matrix::from_fn(9, 6, |i, j| (i as f64 * 1.3 - j as f64 * 0.7).cos());
        let c = syrk(a.as_ref());
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(c.get(i, j), c.get(j, i), "bitwise symmetry expected");
            }
        }
    }

    #[test]
    fn gram_of_orthonormal_is_identity() {
        // Columns of the identity embedded in a taller matrix are orthonormal.
        let a = Matrix::from_fn(8, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let c = syrk(a.as_ref());
        assert_eq!(c, Matrix::identity(3));
    }

    #[test]
    fn empty_rows() {
        let a = Matrix::zeros(0, 4);
        assert_eq!(syrk(a.as_ref()), Matrix::zeros(4, 4));
    }
}
