//! Timed microkernel probes: measure the *live* machine instead of trusting
//! published specs.
//!
//! The closed-form cost models predict flop counts exactly, but turning
//! flops into seconds needs an effective flop rate — and that rate depends
//! on the backend, the CPU, the thread budget, and whatever else shares the
//! machine. [`probe_gemm`] runs a short, seeded, square `gemm` on the chosen
//! backend with a wall clock around it and reports the measured seconds per
//! flop; the autotuner feeds that into the machine profile it scores
//! candidates with (`costmodel::MachineCal::calibrated`), and the bench
//! harness divides measured kernel times by it so checked-in baselines are
//! comparable across machines of different speeds.
//!
//! [`probe_syrk`] is the Gram-kernel sibling: CholeskyQR's arithmetic is
//! dominated by `AᵀA` on tall panels, and the symmetry-aware blocked SYRK
//! runs at a *different* effective rate than square gemm (half the tile
//! flops against the same `m·n²` ledger convention). Calibration that only
//! watches gemm systematically mispredicts the Gram-heavy algorithms, so
//! tuning sweeps record both rates.
//!
//! Probes are deliberately cheap (a few milliseconds) and deterministic in
//! *work* (seeded operands, fixed dimension, fixed repetition count) —
//! only the measured wall time varies run to run, and the minimum over
//! `reps` repetitions is reported to shed scheduler noise.

use crate::backend::BackendKind;
use crate::gemm::Trans;
use crate::matrix::Matrix;
use crate::random::gaussian_matrix;
use std::time::Instant;

/// Which kernel a probe timed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKernel {
    /// Square `dim × dim × dim` general matrix multiply.
    Gemm,
    /// Tall-panel Gram matrix `AᵀA` (`rows × dim` input).
    Syrk,
    /// Rank-k row-append factor update (`rows × dim` block folded into a
    /// `dim × dim` upper factor).
    Append,
}

impl std::fmt::Display for ProbeKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ProbeKernel::Gemm => "gemm",
            ProbeKernel::Syrk => "syrk",
            ProbeKernel::Append => "append",
        })
    }
}

/// Result of one timed microkernel probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeReport {
    /// The backend that was measured.
    pub backend: BackendKind,
    /// The kernel that was measured.
    pub kernel: ProbeKernel,
    /// Contraction rows: equal to `dim` for the square gemm probe, the
    /// panel height `m` for the syrk probe.
    pub rows: usize,
    /// Probe dimension: the gemm multiplied two `dim × dim` operands; the
    /// syrk computed the `dim × dim` Gram matrix of a `rows × dim` panel.
    pub dim: usize,
    /// Repetitions timed (the minimum is kept).
    pub reps: usize,
    /// Best measured wall time of one kernel run, in seconds.
    pub seconds: f64,
    /// Measured effective compute rate in seconds per flop — against the
    /// *ledger convention* for the kernel (`2·dim³` for gemm, `rows·dim²`
    /// for syrk), so it plugs directly into a machine model's γ.
    pub seconds_per_flop: f64,
}

impl ProbeReport {
    /// Measured effective rate in Gflop/s (convenience for reports).
    pub fn gflops(&self) -> f64 {
        1.0 / (self.seconds_per_flop * 1e9)
    }
}

/// Shared timing loop: one untimed warm-up, then the best of `reps`.
fn time_best(reps: usize, mut run: impl FnMut()) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        run();
        let dt = t.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    // Guard against a clock too coarse to see the kernel at all.
    best.max(1e-9)
}

/// Times a square `dim × dim × dim` gemm on `backend`, returning the best
/// of `reps` runs. `dim` is clamped to at least 8 and `reps` to at least 1.
///
/// The flop convention matches the cost ledger's ([`crate::flops::gemm`]),
/// so the returned `seconds_per_flop` plugs directly into a machine
/// model's γ (seconds per flop) against model-predicted flop counts.
pub fn probe_gemm(backend: BackendKind, dim: usize, reps: usize) -> ProbeReport {
    let dim = dim.max(8);
    let reps = reps.max(1);
    let a = gaussian_matrix(dim, dim, 0x9e3779b97f4a7c15);
    let b = gaussian_matrix(dim, dim, 0x6a09e667f3bcc909);
    let mut c = Matrix::zeros(dim, dim);
    let kernel = backend.get();
    let seconds = time_best(reps, || {
        kernel.gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c.as_mut());
    });
    ProbeReport {
        backend,
        kernel: ProbeKernel::Gemm,
        rows: dim,
        dim,
        reps,
        seconds,
        seconds_per_flop: seconds / crate::flops::gemm(dim, dim, dim),
    }
}

/// Times the Gram kernel `AᵀA` of a `rows × dim` panel on `backend`
/// (through [`Backend::syrk_into`](crate::Backend::syrk_into), the hot-path
/// entry), returning the best of `reps` runs. `rows` is clamped to at least
/// `dim`, `dim` to at least 8, and `reps` to at least 1.
///
/// `seconds_per_flop` is charged against the ledger convention
/// [`crate::flops::syrk`]` = rows·dim²` — the same count the cost models
/// predict — so a symmetry-aware kernel that skips the upper triangle shows
/// up as a *faster effective rate*, exactly what calibration should see.
pub fn probe_syrk(backend: BackendKind, rows: usize, dim: usize, reps: usize) -> ProbeReport {
    let dim = dim.max(8);
    let rows = rows.max(dim);
    let reps = reps.max(1);
    let a = gaussian_matrix(rows, dim, 0xbf58476d1ce4e5b9);
    let mut c = Matrix::zeros(dim, dim);
    let kernel = backend.get();
    let seconds = time_best(reps, || {
        kernel.syrk_into(a.as_ref(), c.as_mut());
    });
    ProbeReport {
        backend,
        kernel: ProbeKernel::Syrk,
        rows,
        dim,
        reps,
        seconds,
        seconds_per_flop: seconds / crate::flops::syrk(rows, dim),
    }
}

/// Times the rank-k row-append update ([`crate::update::rank_k_append`]):
/// folds a seeded `rows × dim` block into a live `dim × dim` upper factor,
/// returning the best of `reps` runs. `dim` is clamped to at least 8,
/// `rows` (the update width `k`) to at least 1, and `reps` to at least 1.
///
/// `seconds_per_flop` is charged against
/// [`crate::flops::rank_k_append`]` = k·dim² + 2·dim³/3` — the streaming
/// cost model's convention — so the measured rate feeds the
/// update-vs-refresh crossover the same way the gemm/syrk probes feed γ.
/// Each timed run mutates the factor in place (`R'ᵀR' = RᵀR + BᵀB`), which
/// is exactly the steady-state streaming workload.
pub fn probe_append(backend: BackendKind, rows: usize, dim: usize, reps: usize) -> ProbeReport {
    let dim = dim.max(8);
    let rows = rows.max(1);
    let reps = reps.max(1);
    // Seed the factor from a well-conditioned Gram matrix so repeated
    // appends stay numerically tame (the diagonal only grows).
    let a = crate::random::well_conditioned(2 * dim, dim, 0x94d049bb133111eb);
    let mut g = crate::syrk::syrk(a.as_ref());
    crate::cholesky::potrf(g.as_mut()).expect("well-conditioned Gram matrix");
    let mut r = g.transposed();
    let b = gaussian_matrix(rows, dim, 0xd6e8feb86659fd93);
    let kernel = backend.get();
    let mut ws = crate::workspace::Workspace::new();
    let seconds = time_best(reps, || {
        crate::update::rank_k_append(r.as_mut(), b.as_ref(), kernel, &mut ws)
            .expect("append of a Gaussian block onto a well-conditioned factor");
    });
    ProbeReport {
        backend,
        kernel: ProbeKernel::Append,
        rows,
        dim,
        reps,
        seconds,
        seconds_per_flop: seconds / crate::flops::rank_k_append(dim, rows),
    }
}

/// The default gemm probe the autotuner uses: a 256³ gemm, best of 3.
pub fn default_probe(backend: BackendKind) -> ProbeReport {
    probe_gemm(backend, 256, 3)
}

/// The default Gram-kernel probe: `AᵀA` of a 2048 × 96 panel (the paper's
/// tall-skinny regime), best of 3.
pub fn default_syrk_probe(backend: BackendKind) -> ProbeReport {
    probe_syrk(backend, 2048, 96, 3)
}

/// The default append probe: a rank-64 update of a 128-column factor (the
/// streaming bench's headline width), best of 3.
pub fn default_append_probe(backend: BackendKind) -> ProbeReport {
    probe_append(backend, 64, 128, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_sane_rates() {
        for kind in BackendKind::ALL {
            let report = probe_gemm(kind, 64, 2);
            assert_eq!(report.backend, kind);
            assert_eq!(report.kernel, ProbeKernel::Gemm);
            assert!(report.seconds > 0.0);
            assert!(report.seconds_per_flop > 0.0 && report.seconds_per_flop.is_finite());
            // Anything between 1 Mflop/s and 10 Tflop/s is believable; the
            // point is catching unit errors (flops vs Gflops), not speed.
            assert!(
                (1e-13..1e-6).contains(&report.seconds_per_flop),
                "{kind}: {} s/flop",
                report.seconds_per_flop
            );
        }
    }

    #[test]
    fn syrk_probe_reports_sane_rates() {
        for kind in BackendKind::ALL {
            let report = probe_syrk(kind, 512, 48, 2);
            assert_eq!(report.backend, kind);
            assert_eq!(report.kernel, ProbeKernel::Syrk);
            assert_eq!((report.rows, report.dim), (512, 48));
            assert!(report.seconds > 0.0);
            assert!(
                (1e-13..1e-6).contains(&report.seconds_per_flop),
                "{kind}: {} s/flop",
                report.seconds_per_flop
            );
        }
    }

    #[test]
    fn append_probe_reports_sane_rates() {
        for kind in BackendKind::ALL {
            let report = probe_append(kind, 16, 48, 2);
            assert_eq!(report.backend, kind);
            assert_eq!(report.kernel, ProbeKernel::Append);
            assert_eq!((report.rows, report.dim), (16, 48));
            assert!(report.seconds > 0.0);
            assert!(
                (1e-13..1e-6).contains(&report.seconds_per_flop),
                "{kind}: {} s/flop",
                report.seconds_per_flop
            );
        }
    }

    #[test]
    fn probe_clamps_degenerate_requests() {
        let report = probe_gemm(BackendKind::Naive, 0, 0);
        assert_eq!(report.dim, 8);
        assert_eq!(report.reps, 1);
        let report = probe_syrk(BackendKind::Naive, 0, 0, 0);
        assert_eq!(report.dim, 8);
        assert_eq!(report.rows, 8, "rows clamps up to dim");
        assert_eq!(report.reps, 1);
        let report = probe_append(BackendKind::Naive, 0, 0, 0);
        assert_eq!(report.dim, 8);
        assert_eq!(report.rows, 1, "append width clamps to one row");
        assert_eq!(report.reps, 1);
    }
}
