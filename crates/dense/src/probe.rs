//! Timed microkernel probes: measure the *live* machine instead of trusting
//! published specs.
//!
//! The closed-form cost models predict flop counts exactly, but turning
//! flops into seconds needs an effective flop rate — and that rate depends
//! on the backend, the CPU, the thread budget, and whatever else shares the
//! machine. [`probe_gemm`] runs a short, seeded, square `gemm` on the chosen
//! backend with a wall clock around it and reports the measured seconds per
//! flop; the autotuner feeds that into the machine profile it scores
//! candidates with (`costmodel::MachineCal::calibrated`), and the bench
//! harness divides measured kernel times by it so checked-in baselines are
//! comparable across machines of different speeds.
//!
//! Probes are deliberately cheap (a few milliseconds) and deterministic in
//! *work* (seeded operands, fixed dimension, fixed repetition count) —
//! only the measured wall time varies run to run, and the minimum over
//! `reps` repetitions is reported to shed scheduler noise.

use crate::backend::BackendKind;
use crate::gemm::Trans;
use crate::matrix::Matrix;
use crate::random::gaussian_matrix;
use std::time::Instant;

/// Result of one timed microkernel probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeReport {
    /// The backend that was measured.
    pub backend: BackendKind,
    /// Probe dimension: the gemm multiplied two `dim × dim` operands.
    pub dim: usize,
    /// Repetitions timed (the minimum is kept).
    pub reps: usize,
    /// Best measured wall time of one gemm, in seconds.
    pub seconds: f64,
    /// Measured effective compute rate in seconds per flop (the γ a
    /// calibrated machine profile should charge).
    pub seconds_per_flop: f64,
}

impl ProbeReport {
    /// Measured effective rate in Gflop/s (convenience for reports).
    pub fn gflops(&self) -> f64 {
        1.0 / (self.seconds_per_flop * 1e9)
    }
}

/// Times a square `dim × dim × dim` gemm on `backend`, returning the best
/// of `reps` runs. `dim` is clamped to at least 8 and `reps` to at least 1.
///
/// The flop convention matches the cost ledger's ([`crate::flops::gemm`]),
/// so the returned `seconds_per_flop` plugs directly into a machine
/// model's γ (seconds per flop) against model-predicted flop counts.
pub fn probe_gemm(backend: BackendKind, dim: usize, reps: usize) -> ProbeReport {
    let dim = dim.max(8);
    let reps = reps.max(1);
    let a = gaussian_matrix(dim, dim, 0x9e3779b97f4a7c15);
    let b = gaussian_matrix(dim, dim, 0x6a09e667f3bcc909);
    let mut c = Matrix::zeros(dim, dim);
    let kernel = backend.get();
    // One untimed warm-up pass: page in the operands and settle dispatch.
    kernel.gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c.as_mut());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        kernel.gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c.as_mut());
        let dt = t.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    // Guard against a clock too coarse to see the kernel at all.
    let seconds = best.max(1e-9);
    ProbeReport {
        backend,
        dim,
        reps,
        seconds,
        seconds_per_flop: seconds / crate::flops::gemm(dim, dim, dim),
    }
}

/// The default probe the autotuner uses: a 256³ gemm, best of 3.
pub fn default_probe(backend: BackendKind) -> ProbeReport {
    probe_gemm(backend, 256, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_sane_rates() {
        for kind in BackendKind::ALL {
            let report = probe_gemm(kind, 64, 2);
            assert_eq!(report.backend, kind);
            assert!(report.seconds > 0.0);
            assert!(report.seconds_per_flop > 0.0 && report.seconds_per_flop.is_finite());
            // Anything between 1 Mflop/s and 10 Tflop/s is believable; the
            // point is catching unit errors (flops vs Gflops), not speed.
            assert!(
                (1e-13..1e-6).contains(&report.seconds_per_flop),
                "{kind}: {} s/flop",
                report.seconds_per_flop
            );
        }
    }

    #[test]
    fn probe_clamps_degenerate_requests() {
        let report = probe_gemm(BackendKind::Naive, 0, 0);
        assert_eq!(report.dim, 8);
        assert_eq!(report.reps, 1);
    }
}
