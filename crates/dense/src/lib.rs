//! Sequential dense linear algebra kernels: the BLAS/LAPACK substrate of the
//! CA-CQR2 reproduction.
//!
//! The paper's implementation calls BLAS (`dgemm`, `dsyrk`, `dtrsm`) and
//! LAPACK (`dpotrf`, `dtrtri`, `dgeqrf`) for all node-local computation.
//! This crate provides from-scratch Rust equivalents:
//!
//! * [`Matrix`] — an owned row-major `f64` matrix with strided views
//!   ([`MatRef`]/[`MatMut`]) that make blocked algorithms natural.
//! * [`backend`] — the pluggable BLAS-3 kernel layer: a [`Backend`] trait
//!   with two implementations, [`backend::Naive`] (the audited loop-nest
//!   oracle) and [`backend::Blocked`] (packed cache-blocked panels, an
//!   `MR × NR` register-tiled microkernel, optional block-level threading).
//!   Select by value with [`BackendKind`]; the process default is `Blocked`
//!   (`CACQR_BACKEND=naive` overrides).
//! * [`gemm()`] — general matrix multiply with transpose flags (the naive
//!   reference path; backend-routed code calls `Backend::gemm`).
//! * [`syrk()`] — symmetric rank-k update `C = AᵀA` (naive reference).
//! * [`trsm`] — triangular solves and multiplies (naive reference).
//! * [`cholesky`] — blocked Cholesky, triangular inversion, and the paper's
//!   joint `CholInv` recursion (Algorithm 2). BLAS-3 work routes through a
//!   backend (`*_with` variants take it explicitly).
//! * [`householder`] — blocked Householder QR (the sequential reference and
//!   the kernel under the ScaLAPACK-like baseline); block-reflector
//!   applications route through a backend.
//! * [`cond`] — Hager–Higham triangular 1-norm condition estimation: the
//!   O(n²) κ₁(R) estimate the escalation ladder gates on.
//! * [`fault`] — deterministic fault injection (`CACQR_FAULTS`): named
//!   faultpoints at the Cholesky pivot and arena checkout sites (consumers
//!   add collective/worker sites), zero-cost when disabled.
//! * [`svd`] — one-sided Jacobi SVD, used to measure condition numbers.
//!   (Pure BLAS-1 column rotations — there is no BLAS-3 call to route
//!   through a backend.)
//! * [`norms`] — error metrics (orthogonality, residual, triangularity).
//! * [`probe`] — timed microkernel probes measuring the live machine's
//!   effective flop rate per backend (the autotuner's calibration input).
//! * [`random`] — seeded Gaussian matrices and prescribed-κ test matrices.
//! * [`workspace`] — grow-only scratch arenas ([`Workspace`]) and the
//!   thread-safe [`WorkspacePool`]: the hot factor paths draw every
//!   temporary from these and re-allocate nothing once warm.
//! * [`flops`] — the floating-point-operation conventions charged to the
//!   α-β-γ cost ledger (chosen to match the paper's accounting). Charges
//!   depend only on operand shapes, never on the backend, so cost-model
//!   exactness is backend-invariant.
//!
//! All kernels are deterministic; given identical inputs they produce
//! bitwise-identical outputs (independent of thread count), which the
//! distributed tests rely on.

// Index-based loops are the house style for the numeric kernels: the
// subscripts mirror the paper's subscripted recurrences.
#![allow(clippy::needless_range_loop)]

pub mod backend;
pub mod blas1;
pub mod cholesky;
pub mod cond;
pub mod fault;
pub mod flops;
pub mod gemm;
pub mod householder;
pub mod matrix;
pub mod norms;
pub mod probe;
pub mod random;
pub mod svd;
pub mod syrk;
pub mod trsm;
pub mod update;
pub mod workspace;

pub use backend::{
    kernel_threads, max_threads, pool_worker_idle, thread_budget, Backend, BackendKind, PoolIdleGuard, PoolReservation,
};
pub use cholesky::{cholinv, cholinv_with, potrf, potrf_with, potrf_ws, trtri_lower, trtri_lower_with, CholeskyError};
pub use cond::cond_estimate;
pub use fault::FaultPlan;
pub use gemm::{gemm, matmul, Trans};
pub use householder::{form_q, householder_qr, QrFactors};
pub use matrix::{MatMut, MatRef, Matrix};
pub use norms::{frobenius, max_abs, orthogonality_error, residual_error};
pub use probe::{
    default_append_probe, default_probe, default_syrk_probe, probe_append, probe_gemm, probe_syrk, ProbeKernel,
    ProbeReport,
};
pub use syrk::{syrk, syrk_into, syrk_via_gemm};
pub use trsm::{trmm_upper_upper, trsm_left_lower_trans, trsm_left_upper, trsm_right_lower_trans, trsm_right_upper};
pub use update::{rank_k_append, rank_k_downdate, UpdateError};
pub use workspace::{PooledWorkspace, Workspace, WorkspacePool};
