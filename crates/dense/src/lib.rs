//! Sequential dense linear algebra kernels: the BLAS/LAPACK substrate of the
//! CA-CQR2 reproduction.
//!
//! The paper's implementation calls BLAS (`dgemm`, `dsyrk`, `dtrsm`) and
//! LAPACK (`dpotrf`, `dtrtri`, `dgeqrf`) for all node-local computation.
//! This crate provides from-scratch Rust equivalents:
//!
//! * [`Matrix`] — an owned row-major `f64` matrix with strided views
//!   ([`MatRef`]/[`MatMut`]) that make blocked algorithms natural.
//! * [`gemm()`] — general matrix multiply with transpose flags.
//! * [`syrk()`] — symmetric rank-k update `C = AᵀA`.
//! * [`trsm`] — triangular solves and multiplies.
//! * [`cholesky`] — blocked Cholesky, triangular inversion, and the paper's
//!   joint `CholInv` recursion (Algorithm 2).
//! * [`householder`] — blocked Householder QR (the sequential reference and
//!   the kernel under the ScaLAPACK-like baseline).
//! * [`svd`] — one-sided Jacobi SVD, used to measure condition numbers.
//! * [`norms`] — error metrics (orthogonality, residual, triangularity).
//! * [`random`] — seeded Gaussian matrices and prescribed-κ test matrices.
//! * [`flops`] — the floating-point-operation conventions charged to the
//!   α-β-γ cost ledger (chosen to match the paper's accounting).
//!
//! All kernels are deterministic; given identical inputs they produce
//! bitwise-identical outputs, which the distributed tests rely on.

pub mod blas1;
pub mod cholesky;
pub mod flops;
pub mod gemm;
pub mod householder;
pub mod matrix;
pub mod norms;
pub mod random;
pub mod svd;
pub mod syrk;
pub mod trsm;

pub use cholesky::{cholinv, potrf, trtri_lower, CholeskyError};
pub use gemm::{gemm, matmul, Trans};
pub use householder::{form_q, householder_qr, QrFactors};
pub use matrix::{MatMut, MatRef, Matrix};
pub use norms::{frobenius, max_abs, orthogonality_error, residual_error};
pub use syrk::syrk;
pub use trsm::{trmm_upper_upper, trsm_right_lower_trans, trsm_right_upper};
