//! One-sided Jacobi SVD (singular values only).
//!
//! Used by tests and the stability experiment to *measure* `κ₂(A)` of the
//! generated inputs — the reproduction of the paper's §I claim that
//! CholeskyQR loses `Θ(κ²)` digits of orthogonality needs an independent
//! measurement of κ. One-sided Jacobi is slow (`O(n²·m)` per sweep) but
//! simple and accurate to full precision for the small matrices tests use.

use crate::matrix::Matrix;

/// Returns the singular values of `a` (`m ≥ n`), sorted descending.
pub fn singular_values(a: &Matrix) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "one-sided Jacobi requires m >= n");
    // Work on a column-major copy: columns are rotated in place.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| (0..m).map(|i| a.get(i, j)).collect()).collect();

    let max_sweeps = 60;
    let tol = 1e-15;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for i in 0..m {
                    let x = cols[p][i];
                    let y = cols[q][i];
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                let denom = (app * aqq).sqrt();
                if denom == 0.0 {
                    continue;
                }
                let ratio = apq.abs() / denom;
                off = off.max(ratio);
                if ratio <= tol {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let x = cols[p][i];
                    let y = cols[q][i];
                    cols[p][i] = c * x - s * y;
                    cols[q][i] = s * x + c * y;
                }
            }
        }
        if off <= tol {
            break;
        }
    }
    let mut sv: Vec<f64> = cols
        .iter()
        .map(|col| col.iter().map(|v| v * v).sum::<f64>().sqrt())
        .collect();
    sv.sort_by(|a, b| b.partial_cmp(a).unwrap());
    sv
}

/// 2-norm condition number `σ_max / σ_min`. Returns `f64::INFINITY` for
/// numerically rank-deficient input.
pub fn condition_number(a: &Matrix) -> f64 {
    let sv = singular_values(a);
    let smin = sv[sv.len() - 1];
    if smin == 0.0 {
        f64::INFINITY
    } else {
        sv[0] / smin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_svd() {
        let mut a = Matrix::zeros(5, 3);
        a.set(0, 0, 3.0);
        a.set(1, 1, 1.0);
        a.set(2, 2, 2.0);
        let sv = singular_values(&a);
        assert!((sv[0] - 3.0).abs() < 1e-12);
        assert!((sv[1] - 2.0).abs() < 1e-12);
        assert!((sv[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_condition() {
        let a = Matrix::identity(6);
        assert!((condition_number(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_reports_infinite() {
        let a = Matrix::from_fn(4, 2, |i, _| i as f64); // two identical columns
        assert!(condition_number(&a).is_infinite());
    }

    #[test]
    fn frobenius_identity_check() {
        // Σσᵢ² = ‖A‖_F².
        let a = Matrix::from_fn(9, 4, |i, j| ((i * 4 + j) as f64 * 0.31).sin());
        let sv = singular_values(&a);
        let sum_sq: f64 = sv.iter().map(|s| s * s).sum();
        let fro_sq: f64 = a.data().iter().map(|v| v * v).sum();
        assert!((sum_sq - fro_sq).abs() < 1e-10 * fro_sq);
    }
}
