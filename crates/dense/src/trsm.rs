//! Triangular solves and multiplies.
//!
//! CholeskyQR applies `R⁻¹` from the right (`Q = A·R⁻¹`); with `R = Lᵀ` from
//! the Cholesky factor this is either an explicit multiply by the inverse
//! (the paper's default path) or a right-sided triangular solve (the
//! `InverseDepth > 0` path). Both row-sweep kernels below are `O(m·n²)` for an
//! `m × n` right-hand side.

use crate::matrix::{MatMut, MatRef, Matrix};

/// Solves `X·Lᵀ = B` in place (`B` is overwritten with `X`).
///
/// `l` is lower triangular `n × n`; `b` is `m × n`. Since `Lᵀ` is upper
/// triangular, each row of `B` is solved by forward substitution across
/// columns.
pub fn trsm_right_lower_trans(l: MatRef<'_>, mut b: MatMut<'_>) {
    let n = l.rows();
    assert_eq!(l.cols(), n, "triangular factor must be square");
    assert_eq!(b.cols(), n, "rhs width must match triangular dimension");
    for i in 0..b.rows() {
        let row = b.row_mut(i);
        // Row solve: x·Lᵀ = b  ⇔  for j ascending: x[j] = (b[j] - Σ_{k<j} x[k]·Lᵀ[k][j]) / L[j][j]
        // and Lᵀ[k][j] = L[j][k].
        for j in 0..n {
            let lrow = l.row(j);
            let mut s = row[j];
            for k in 0..j {
                s -= row[k] * lrow[k];
            }
            row[j] = s / lrow[j];
        }
    }
}

/// Solves `X·U = B` in place (`B` is overwritten with `X`), `U` upper triangular.
pub fn trsm_right_upper(u: MatRef<'_>, mut b: MatMut<'_>) {
    let n = u.rows();
    assert_eq!(u.cols(), n, "triangular factor must be square");
    assert_eq!(b.cols(), n, "rhs width must match triangular dimension");
    for i in 0..b.rows() {
        let row = b.row_mut(i);
        // x·U = b ⇔ for j ascending: x[j] = (b[j] - Σ_{k<j} x[k]·U[k][j]) / U[j][j].
        for j in 0..n {
            let mut s = row[j];
            for k in 0..j {
                s -= row[k] * u.at(k, j);
            }
            row[j] = s / u.at(j, j);
        }
    }
}

/// Solves `L·X = B` in place (`B` overwritten with `X`), `L` lower triangular.
pub fn trsm_left_lower(l: MatRef<'_>, mut b: MatMut<'_>) {
    let n = l.rows();
    assert_eq!(l.cols(), n, "triangular factor must be square");
    assert_eq!(b.rows(), n, "rhs height must match triangular dimension");
    for i in 0..n {
        let lrow = l.row(i);
        let diag = lrow[i];
        // b[i] -= Σ_{k<i} L[i][k]·b[k], then scale. Split keeps the borrows
        // of row i (write) and rows < i (read) disjoint.
        let (done, mut active) = b.rb_mut().split_rows(i);
        let done = done.rb();
        let bi = active.row_mut(0);
        for k in 0..i {
            let lik = lrow[k];
            if lik == 0.0 {
                continue;
            }
            let bk = done.row(k);
            for (x, y) in bi.iter_mut().zip(bk) {
                *x -= lik * y;
            }
        }
        for v in bi {
            *v /= diag;
        }
    }
}

/// Solves `U·X = B` in place (`B` overwritten with `X`), `U` upper
/// triangular — the backward substitution used to recover least-squares
/// solutions from `R·x = Qᵀb`.
pub fn trsm_left_upper(u: MatRef<'_>, mut b: MatMut<'_>) {
    let n = u.rows();
    assert_eq!(u.cols(), n, "triangular factor must be square");
    assert_eq!(b.rows(), n, "rhs height must match triangular dimension");
    for i in (0..n).rev() {
        let urow = u.row(i);
        let diag = urow[i];
        // b[i] -= Σ_{k>i} U[i][k]·b[k], then scale. Rows > i are final.
        let (mut active, done) = b.rb_mut().split_rows(i + 1);
        let done = done.rb();
        let bi = active.row_mut(i);
        for k in (i + 1)..n {
            let uik = urow[k];
            if uik == 0.0 {
                continue;
            }
            let bk = done.row(k - i - 1);
            for (x, y) in bi.iter_mut().zip(bk) {
                *x -= uik * y;
            }
        }
        for v in bi {
            *v /= diag;
        }
    }
}

/// Solves `Uᵀ·X = B` in place (`B` overwritten with `X`), `U` upper
/// triangular — the forward substitution of the semi-normal-equations solve
/// `RᵀR·x = Aᵀb`, reading `R`'s columns directly so no transposed copy of
/// the factor is ever materialized.
pub fn trsm_left_lower_trans(u: MatRef<'_>, mut b: MatMut<'_>) {
    let n = u.rows();
    assert_eq!(u.cols(), n, "triangular factor must be square");
    assert_eq!(b.rows(), n, "rhs height must match triangular dimension");
    for i in 0..n {
        let diag = u.at(i, i);
        // b[i] -= Σ_{k<i} Uᵀ[i][k]·b[k] = Σ_{k<i} U[k][i]·b[k], then scale.
        // Split keeps the borrows of row i (write) and rows < i (read)
        // disjoint.
        let (done, mut active) = b.rb_mut().split_rows(i);
        let done = done.rb();
        let bi = active.row_mut(0);
        for k in 0..i {
            let uki = u.at(k, i);
            if uki == 0.0 {
                continue;
            }
            let bk = done.row(k);
            for (x, y) in bi.iter_mut().zip(bk) {
                *x -= uki * y;
            }
        }
        for v in bi {
            *v /= diag;
        }
    }
}

/// Returns the product `U₂·U₁` of two upper-triangular matrices (the result
/// is itself upper triangular). Used for the CQR2 update `R = R₂·R₁`
/// (paper Algorithm 5 line 3, charged `n³/3` flops).
pub fn trmm_upper_upper(u2: MatRef<'_>, u1: MatRef<'_>) -> Matrix {
    let n = u2.rows();
    assert_eq!(u2.cols(), n);
    assert_eq!((u1.rows(), u1.cols()), (n, n));
    let mut data = vec![0.0f64; n * n];
    for i in 0..n {
        let dst = &mut data[i * n..(i + 1) * n];
        for k in i..n {
            let v = u2.at(i, k);
            if v == 0.0 {
                continue;
            }
            let src = u1.row(k);
            // Row i of the result accumulates v * row k of u1, columns k..n only
            // (earlier columns of row k are structurally zero).
            for j in k..n {
                dst[j] += v * src[j];
            }
        }
    }
    Matrix::from_vec(n, n, data)
}

/// Zeroes the strictly-lower part of a matrix in place (extract `R` from a
/// factorization that stored the full square).
pub fn zero_strict_lower(mut a: MatMut<'_>) {
    let n = a.rows().min(a.cols());
    for i in 1..n {
        let row = a.row_mut(i);
        let stop = i.min(row.len());
        for v in &mut row[..stop] {
            *v = 0.0;
        }
    }
    // Rows beyond the square part (m > n) are entirely below the diagonal.
    for i in a.cols()..a.rows() {
        a.row_mut(i).fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Trans};
    use crate::matrix::Matrix;

    fn lower_test_matrix(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if j > i {
                0.0
            } else if i == j {
                2.0 + i as f64
            } else {
                ((i * n + j) as f64 * 0.13).sin()
            }
        })
    }

    #[test]
    fn right_lower_trans_solves() {
        let l = lower_test_matrix(5);
        let x_true = Matrix::from_fn(7, 5, |i, j| (i as f64 - 2.0 * j as f64) * 0.3);
        // B = X·Lᵀ
        let mut b = matmul(x_true.as_ref(), Trans::No, l.as_ref(), Trans::Yes);
        trsm_right_lower_trans(l.as_ref(), b.as_mut());
        for (x, y) in b.data().iter().zip(x_true.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn right_upper_solves() {
        let u = lower_test_matrix(4).transposed();
        let x_true = Matrix::from_fn(6, 4, |i, j| ((i + j) as f64).cos());
        let mut b = matmul(x_true.as_ref(), Trans::No, u.as_ref(), Trans::No);
        trsm_right_upper(u.as_ref(), b.as_mut());
        for (x, y) in b.data().iter().zip(x_true.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn left_upper_solves() {
        let u = lower_test_matrix(6).transposed();
        let x_true = Matrix::from_fn(6, 2, |i, j| (i as f64 + 1.0) * (j as f64 - 0.5));
        let mut b = matmul(u.as_ref(), Trans::No, x_true.as_ref(), Trans::No);
        trsm_left_upper(u.as_ref(), b.as_mut());
        for (x, y) in b.data().iter().zip(x_true.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn left_lower_solves() {
        let l = lower_test_matrix(5);
        let x_true = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 0.21 - 1.0);
        let mut b = matmul(l.as_ref(), Trans::No, x_true.as_ref(), Trans::No);
        trsm_left_lower(l.as_ref(), b.as_mut());
        for (x, y) in b.data().iter().zip(x_true.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn left_lower_trans_solves() {
        let u = lower_test_matrix(6).transposed();
        let x_true = Matrix::from_fn(6, 3, |i, j| ((i * 2 + j) as f64 * 0.17).sin() + 0.4);
        // B = Uᵀ·X
        let mut b = matmul(u.as_ref(), Trans::Yes, x_true.as_ref(), Trans::No);
        trsm_left_lower_trans(u.as_ref(), b.as_mut());
        for (x, y) in b.data().iter().zip(x_true.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_times_upper_is_upper() {
        let u1 = lower_test_matrix(6).transposed();
        let u2 = lower_test_matrix(6).transposed();
        let p = trmm_upper_upper(u2.as_ref(), u1.as_ref());
        let reference = matmul(u2.as_ref(), Trans::No, u1.as_ref(), Trans::No);
        for i in 0..6 {
            for j in 0..6 {
                assert!((p.get(i, j) - reference.get(i, j)).abs() < 1e-12);
                if j < i {
                    assert_eq!(p.get(i, j), 0.0, "product must be exactly upper triangular");
                }
            }
        }
    }

    #[test]
    fn zero_strict_lower_rectangular() {
        let mut a = Matrix::from_fn(5, 3, |_, _| 1.0);
        zero_strict_lower(a.as_mut());
        for i in 0..5 {
            for j in 0..3 {
                let expect = if i <= j { 1.0 } else { 0.0 };
                assert_eq!(a.get(i, j), expect);
            }
        }
    }
}
