//! Error metrics used by the correctness tests and the stability experiments.

use crate::gemm::{gemm, matmul, Trans};
use crate::matrix::{MatRef, Matrix};

/// Frobenius norm `‖A‖_F`.
pub fn frobenius(a: MatRef<'_>) -> f64 {
    let mut s = 0.0;
    for i in 0..a.rows() {
        for &v in a.row(i) {
            s += v * v;
        }
    }
    s.sqrt()
}

/// Max-absolute-entry norm `‖A‖_max`.
pub fn max_abs(a: MatRef<'_>) -> f64 {
    let mut m = 0.0f64;
    for i in 0..a.rows() {
        for &v in a.row(i) {
            m = m.max(v.abs());
        }
    }
    m
}

/// Deviation from orthonormality: `‖QᵀQ − I‖_F`.
///
/// This is the metric the CholeskyQR2 literature reports: ≈ machine-ε for
/// Householder QR and CQR2 on well-conditioned input, ≈ `ε·κ(A)²` for plain
/// CholeskyQR.
pub fn orthogonality_error(q: MatRef<'_>) -> f64 {
    let n = q.cols();
    let mut g = matmul(q, Trans::Yes, q, Trans::No);
    for i in 0..n {
        let v = g.get(i, i);
        g.set(i, i, v - 1.0);
    }
    frobenius(g.as_ref())
}

/// Relative residual `‖A − QR‖_F / ‖A‖_F`.
pub fn residual_error(a: MatRef<'_>, q: MatRef<'_>, r: MatRef<'_>) -> f64 {
    let mut d = a.to_owned();
    gemm(-1.0, q, Trans::No, r, Trans::No, 1.0, d.as_mut());
    frobenius(d.as_ref()) / frobenius(a)
}

/// Frobenius norm of the strictly-lower part (how far from upper triangular).
pub fn lower_residual(r: MatRef<'_>) -> f64 {
    let mut s = 0.0;
    for i in 0..r.rows() {
        let row = r.row(i);
        for &v in &row[..i.min(row.len())] {
            s += v * v;
        }
    }
    s.sqrt()
}

/// Relative elementwise difference `‖A − B‖_F / max(1, ‖A‖_F)`.
pub fn rel_diff(a: MatRef<'_>, b: MatRef<'_>) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    let mut d = a.to_owned();
    let mut idx = 0;
    for i in 0..b.rows() {
        let row = b.row(i);
        for (j, &v) in row.iter().enumerate() {
            let _ = j;
            d.data_mut()[idx] -= v;
            idx += 1;
        }
    }
    frobenius(d.as_ref()) / frobenius(a).max(1.0)
}

/// Normalizes the sign of an upper-triangular factor so that diagonals are
/// non-negative, applying the compensating signs to the columns of `Q`.
/// QR is unique only up to these signs; tests comparing factorizations from
/// different algorithms normalize both first.
pub fn normalize_qr_signs(q: &mut Matrix, r: &mut Matrix) {
    let n = r.rows();
    for i in 0..n {
        if r.get(i, i) < 0.0 {
            for j in 0..r.cols() {
                let v = r.get(i, j);
                r.set(i, j, -v);
            }
            for k in 0..q.rows() {
                let v = q.get(k, i);
                q.set(k, i, -v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::qr;
    use crate::matrix::Matrix;

    #[test]
    fn frobenius_known() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert_eq!(frobenius(a.as_ref()), 5.0);
    }

    #[test]
    fn identity_is_orthogonal() {
        let q = Matrix::identity(6);
        assert_eq!(orthogonality_error(q.as_ref()), 0.0);
    }

    #[test]
    fn scaled_identity_is_not() {
        let mut q = Matrix::identity(3);
        q.set(0, 0, 2.0);
        assert!(orthogonality_error(q.as_ref()) > 1.0);
    }

    #[test]
    fn sign_normalization_preserves_product() {
        let a = Matrix::from_fn(10, 4, |i, j| ((i + 3 * j) as f64).sin());
        let (mut q, mut r) = qr(&a);
        let before = residual_error(a.as_ref(), q.as_ref(), r.as_ref());
        normalize_qr_signs(&mut q, &mut r);
        let after = residual_error(a.as_ref(), q.as_ref(), r.as_ref());
        assert!((before - after).abs() < 1e-14);
        for i in 0..4 {
            assert!(r.get(i, i) >= 0.0);
        }
    }
}
