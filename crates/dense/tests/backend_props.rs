//! Property sweep: the `Blocked` backend must agree with the `Naive` oracle
//! for gemm/syrk/trsm across transpose flags, alpha/beta ∈ {0, 1, −2.5},
//! and edge shapes straddling every blocking boundary (microkernel MR/NR,
//! contraction block KC, trsm block TRSM_NB), including empty dimensions.

use dense::backend::blocked::{KC, MR, NR, TRSM_NB};
use dense::backend::BackendKind;
use dense::gemm::Trans;
use dense::Matrix;

fn filled(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(salt.wrapping_mul(0x94d0_49bb_1331_11eb));
        // Map to roughly [-1, 1] with enough entropy to catch index bugs.
        (x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    })
}

fn assert_close(label: &str, got: &Matrix, want: &Matrix, tol: f64) {
    assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()), "{label}: shape");
    for i in 0..got.rows() {
        for j in 0..got.cols() {
            let (g, w) = (got.get(i, j), want.get(i, j));
            assert!(
                (g - w).abs() <= tol * (1.0 + w.abs()),
                "{label}: ({i},{j}) blocked {g} vs naive {w}"
            );
        }
    }
}

#[test]
fn gemm_matches_naive_across_shapes_flags_and_scalars() {
    let naive = BackendKind::Naive.get();
    let blocked = BackendKind::Blocked.get();
    let m_dims = [0usize, 1, MR - 1, MR + 1, 2 * NR + 3];
    let n_dims = [0usize, 1, NR - 1, NR, NR + 1, 19];
    let k_dims = [0usize, 1, 7, KC - 1, KC, KC + 1];
    let scalars = [0.0f64, 1.0, -2.5];
    for &m in &m_dims {
        for &n in &n_dims {
            for &k in &k_dims {
                for (ta, tb) in [
                    (Trans::No, Trans::No),
                    (Trans::Yes, Trans::No),
                    (Trans::No, Trans::Yes),
                    (Trans::Yes, Trans::Yes),
                ] {
                    let a = match ta {
                        Trans::No => filled(m, k, 1),
                        Trans::Yes => filled(k, m, 1),
                    };
                    let b = match tb {
                        Trans::No => filled(k, n, 2),
                        Trans::Yes => filled(n, k, 2),
                    };
                    let c0 = filled(m, n, 3);
                    for &alpha in &scalars {
                        for &beta in &scalars {
                            let mut cn = c0.clone();
                            naive.gemm(alpha, a.as_ref(), ta, b.as_ref(), tb, beta, cn.as_mut());
                            let mut cb = c0.clone();
                            blocked.gemm(alpha, a.as_ref(), ta, b.as_ref(), tb, beta, cb.as_mut());
                            let label = format!("gemm m={m} n={n} k={k} ta={ta:?} tb={tb:?} α={alpha} β={beta}");
                            assert_close(&label, &cb, &cn, 1e-12 * (k.max(1) as f64).sqrt());
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn gemm_beta_zero_overwrites_nan_like_naive() {
    let blocked = BackendKind::Blocked.get();
    let a = Matrix::identity(NR + 1);
    let b = filled(NR + 1, NR + 1, 4);
    let mut c = Matrix::from_fn(NR + 1, NR + 1, |_, _| f64::NAN);
    blocked.gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c.as_mut());
    assert_close("beta-zero NaN overwrite", &c, &b, 0.0);
}

#[test]
fn gemm_matches_on_strided_views_and_odd_sizes() {
    let naive = BackendKind::Naive.get();
    let blocked = BackendKind::Blocked.get();
    let big_a = filled(140, 300, 5);
    let big_b = filled(300, 90, 6);
    let a = big_a.view(7, 11, 129, KC + 1);
    let b = big_b.view(3, 5, KC + 1, 65);
    let mut cn = filled(129, 65, 7);
    let mut cb = cn.clone();
    naive.gemm(-2.5, a, Trans::No, b, Trans::No, 1.0, cn.as_mut());
    blocked.gemm(-2.5, a, Trans::No, b, Trans::No, 1.0, cb.as_mut());
    assert_close("strided odd gemm", &cb, &cn, 1e-11);
}

#[test]
fn syrk_matches_naive_and_is_bitwise_symmetric() {
    let naive = BackendKind::Naive.get();
    let blocked = BackendKind::Blocked.get();
    for &(m, n) in &[(0usize, 4usize), (1, 1), (KC + 1, NR + 1), (57, 33), (3, 19)] {
        let a = filled(m, n, 8);
        let want = naive.syrk(a.as_ref());
        let got = blocked.syrk(a.as_ref());
        assert_close(&format!("syrk {m}x{n}"), &got, &want, 1e-12 * (m.max(1) as f64).sqrt());
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    got.get(i, j),
                    got.get(j, i),
                    "syrk {m}x{n}: bitwise symmetry at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn syrk_is_bitwise_identical_to_own_gemm() {
    // The CholeskyQR paths compute the Gram matrix via syrk (1D) and via
    // gemm (CA); their bitwise agreement is a workspace invariant.
    for kind in BackendKind::ALL {
        let backend = kind.get();
        let a = filled(KC + 3, 2 * NR + 1, 9);
        let via_syrk = backend.syrk(a.as_ref());
        let via_gemm = backend.matmul(a.as_ref(), Trans::Yes, a.as_ref(), Trans::No);
        for (s, g) in via_syrk.data().iter().zip(via_gemm.data()) {
            assert_eq!(s, g, "{kind}: syrk must be bitwise its own gemm(Aᵀ, A)");
        }
    }
}

#[test]
fn trsm_variants_match_naive_across_block_boundaries() {
    let naive = BackendKind::Naive.get();
    let blocked = BackendKind::Blocked.get();
    let n_dims = [1usize, TRSM_NB - 1, TRSM_NB, TRSM_NB + 1, 2 * TRSM_NB + 5];
    let m_dims = [1usize, 5, 33];
    for &n in &n_dims {
        // Well-conditioned lower-triangular factor.
        let l = Matrix::from_fn(n, n, |i, j| {
            if j > i {
                0.0
            } else if i == j {
                2.0 + (i % 7) as f64 * 0.25
            } else {
                ((i * 31 + j * 17) as f64 * 0.13).sin() * 0.3
            }
        });
        let u = l.transposed();
        for &m in &m_dims {
            let right = filled(m, n, 10);
            let left = filled(n, m, 11);
            let tol = 1e-11 * (n as f64);

            let mut want = right.clone();
            naive.trsm_right_lower_trans(l.as_ref(), want.as_mut());
            let mut got = right.clone();
            blocked.trsm_right_lower_trans(l.as_ref(), got.as_mut());
            assert_close(&format!("trsm_right_lower_trans n={n} m={m}"), &got, &want, tol);

            let mut want = right.clone();
            naive.trsm_right_upper(u.as_ref(), want.as_mut());
            let mut got = right.clone();
            blocked.trsm_right_upper(u.as_ref(), got.as_mut());
            assert_close(&format!("trsm_right_upper n={n} m={m}"), &got, &want, tol);

            let mut want = left.clone();
            naive.trsm_left_lower(l.as_ref(), want.as_mut());
            let mut got = left.clone();
            blocked.trsm_left_lower(l.as_ref(), got.as_mut());
            assert_close(&format!("trsm_left_lower n={n} m={m}"), &got, &want, tol);

            let mut want = left.clone();
            naive.trsm_left_upper(u.as_ref(), want.as_mut());
            let mut got = left.clone();
            blocked.trsm_left_upper(u.as_ref(), got.as_mut());
            assert_close(&format!("trsm_left_upper n={n} m={m}"), &got, &want, tol);
        }
    }
}

#[test]
fn blocked_results_do_not_depend_on_thread_count() {
    // CACQR_THREADS is cached process-wide, so emulate the comparison by
    // running sizes that straddle the parallel threshold: determinism is
    // structural (fixed k-order, disjoint blocks), and single- vs
    // multi-block paths must agree bitwise with themselves on repeat runs.
    let blocked = BackendKind::Blocked.get();
    let a = filled(300, 300, 12);
    let b = filled(300, 300, 13);
    let mut c1 = Matrix::zeros(300, 300);
    let mut c2 = Matrix::zeros(300, 300);
    blocked.gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c1.as_mut());
    blocked.gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c2.as_mut());
    assert_eq!(c1, c2, "repeated blocked gemm must be bitwise reproducible");
}
