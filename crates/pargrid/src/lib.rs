//! Processor grids and data distributions for CA-CQR2.
//!
//! The paper runs its algorithms over a tunable `c × d × c` processor grid
//! `Π` (§III-B): dimension `x` (size `c`) partitions matrix *columns*,
//! dimension `y` (size `d`) partitions matrix *rows*, and dimension `z`
//! (size `c`) indexes *replicas*. Setting `d = c` recovers the cubic grid of
//! 3D-CQR2 (§III-A); `c = 1` recovers the 1D grid of 1D-CQR2 (§II-F).
//!
//! * [`GridShape`] — shape arithmetic and rank ↔ `(x, y, z)` mapping.
//! * [`TunableComms`] / [`CubeComms`] — the communicator families each
//!   algorithm needs (rows `Π[:,y,z]`, depth `Π[x,y,:]`, contiguous y-groups,
//!   strided y-classes, and `c × c × c` subcubes), built collectively.
//! * [`dist`] — cyclic distribution index math. The paper uses a cyclic
//!   layout because it keeps every submatrix of the CFR3D recursion
//!   load-balanced across the whole grid.
//! * [`DistMatrix`] — a local block plus its distribution descriptor, with
//!   scatter/gather helpers used by tests and drivers.

pub mod dist;
pub mod distmat;
pub mod grid;

pub use dist::{local_count, local_to_global, owner_of_global};
pub use distmat::DistMatrix;
pub use grid::{CubeComms, GridError, GridShape, TunableComms};
