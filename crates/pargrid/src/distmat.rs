//! Distributed matrices: a local cyclic block plus its descriptor.
//!
//! A [`DistMatrix`] describes the 2D cyclic layout of the paper: for a grid
//! slice with `rp` row-processors and `cp` column-processors, processor
//! `(pr, pc)` owns global entries `(i, j)` with `i ≡ pr (mod rp)` and
//! `j ≡ pc (mod cp)`, stored as a dense `⌈m/rp⌉ × ⌈n/cp⌉` local block with
//! local index `(i / rp, j / cp)`.
//!
//! The replication dimension (`z`, and the `d/c` y-groups for `n × n`
//! intermediates) is *not* part of the descriptor — replicas simply hold
//! identical `DistMatrix` values, which tests assert.

use dense::Matrix;

/// A cyclically distributed dense matrix (one processor's view).
#[derive(Clone, Debug, PartialEq)]
pub struct DistMatrix {
    /// The local block.
    pub local: Matrix,
    /// Global row count.
    pub grows: usize,
    /// Global column count.
    pub gcols: usize,
    /// Row-processor count of the distribution.
    pub rp: usize,
    /// Column-processor count of the distribution.
    pub cp: usize,
    /// This processor's row coordinate in `[0, rp)`.
    pub my_r: usize,
    /// This processor's column coordinate in `[0, cp)`.
    pub my_c: usize,
}

impl DistMatrix {
    /// Local block dimensions for a given global size and distribution.
    pub fn local_dims(grows: usize, gcols: usize, rp: usize, cp: usize, my_r: usize, my_c: usize) -> (usize, usize) {
        (
            crate::dist::local_count(grows, my_r, rp),
            crate::dist::local_count(gcols, my_c, cp),
        )
    }

    /// A zero-initialized distributed matrix.
    pub fn zeros(grows: usize, gcols: usize, rp: usize, cp: usize, my_r: usize, my_c: usize) -> DistMatrix {
        let (lr, lc) = Self::local_dims(grows, gcols, rp, cp, my_r, my_c);
        DistMatrix {
            local: Matrix::zeros(lr, lc),
            grows,
            gcols,
            rp,
            cp,
            my_r,
            my_c,
        }
    }

    /// Extracts this processor's cyclic piece of a (replicated) global matrix.
    pub fn from_global(global: &Matrix, rp: usize, cp: usize, my_r: usize, my_c: usize) -> DistMatrix {
        let (grows, gcols) = (global.rows(), global.cols());
        let (lr, lc) = Self::local_dims(grows, gcols, rp, cp, my_r, my_c);
        let local = Matrix::from_fn(lr, lc, |li, lj| global.get(li * rp + my_r, lj * cp + my_c));
        DistMatrix {
            local,
            grows,
            gcols,
            rp,
            cp,
            my_r,
            my_c,
        }
    }

    /// Extracts this processor's cyclic piece of a global matrix into
    /// **workspace-backed** storage (just the local block — the descriptor
    /// fields are implied by the arguments). The hot factor paths extract
    /// every rank's piece on every call; routing the block through the
    /// caller's [`dense::Workspace`] makes that allocation-free once warm.
    /// Recycle the returned matrix into the same pool when done.
    pub fn local_from_global(
        global: &Matrix,
        rp: usize,
        cp: usize,
        my_r: usize,
        my_c: usize,
        ws: &mut dense::Workspace,
    ) -> Matrix {
        let (lr, lc) = Self::local_dims(global.rows(), global.cols(), rp, cp, my_r, my_c);
        let mut local = Matrix::from_vec(lr, lc, ws.take_vec(lr * lc));
        for li in 0..lr {
            for lj in 0..lc {
                local.set(li, lj, global.get(li * rp + my_r, lj * cp + my_c));
            }
        }
        local
    }

    /// Builds a distributed piece directly from an index function over
    /// *global* indices — lets every rank materialize its share of a seeded
    /// random matrix without communication.
    pub fn from_global_fn(
        grows: usize,
        gcols: usize,
        rp: usize,
        cp: usize,
        my_r: usize,
        my_c: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> DistMatrix {
        let (lr, lc) = Self::local_dims(grows, gcols, rp, cp, my_r, my_c);
        let local = Matrix::from_fn(lr, lc, |li, lj| f(li * rp + my_r, lj * cp + my_c));
        DistMatrix {
            local,
            grows,
            gcols,
            rp,
            cp,
            my_r,
            my_c,
        }
    }

    /// Global index of local entry `(li, lj)`.
    pub fn global_index(&self, li: usize, lj: usize) -> (usize, usize) {
        (li * self.rp + self.my_r, lj * self.cp + self.my_c)
    }

    /// Reassembles a global matrix from every processor's piece (test/driver
    /// helper; `pieces[r][c]` is the local block of processor `(r, c)`).
    pub fn assemble(grows: usize, gcols: usize, rp: usize, cp: usize, pieces: &[Vec<Matrix>]) -> Matrix {
        assert_eq!(pieces.len(), rp);
        let mut out = Matrix::zeros(grows, gcols);
        for (r, row) in pieces.iter().enumerate() {
            assert_eq!(row.len(), cp);
            for (c, block) in row.iter().enumerate() {
                for li in 0..block.rows() {
                    for lj in 0..block.cols() {
                        out.set(li * rp + r, lj * cp + c, block.get(li, lj));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| (i * 100 + j) as f64)
    }

    #[test]
    fn scatter_gather_round_trip() {
        let g = test_matrix(12, 8);
        let (rp, cp) = (4, 2);
        let pieces: Vec<Vec<Matrix>> = (0..rp)
            .map(|r| {
                (0..cp)
                    .map(|c| DistMatrix::from_global(&g, rp, cp, r, c).local)
                    .collect()
            })
            .collect();
        let re = DistMatrix::assemble(12, 8, rp, cp, &pieces);
        assert_eq!(re, g);
    }

    #[test]
    fn local_dims_divide_evenly() {
        let d = DistMatrix::zeros(16, 8, 4, 2, 1, 1);
        assert_eq!((d.local.rows(), d.local.cols()), (4, 4));
    }

    #[test]
    fn global_index_matches_contents() {
        let g = test_matrix(9, 6);
        let d = DistMatrix::from_global(&g, 3, 2, 2, 1);
        for li in 0..d.local.rows() {
            for lj in 0..d.local.cols() {
                let (gi, gj) = d.global_index(li, lj);
                assert_eq!(d.local.get(li, lj), g.get(gi, gj));
            }
        }
    }

    #[test]
    fn local_from_global_matches_from_global_and_recycles() {
        let g = test_matrix(9, 6);
        let mut ws = dense::Workspace::new();
        for _ in 0..3 {
            let local = DistMatrix::local_from_global(&g, 3, 2, 2, 1, &mut ws);
            assert_eq!(local, DistMatrix::from_global(&g, 3, 2, 2, 1).local);
            ws.recycle(local);
        }
        assert_eq!(ws.heap_allocations(), 1, "warm extraction must not allocate");
    }

    #[test]
    fn from_global_fn_agrees_with_from_global() {
        let g = test_matrix(8, 8);
        let a = DistMatrix::from_global(&g, 2, 4, 1, 3);
        let b = DistMatrix::from_global_fn(8, 8, 2, 4, 1, 3, |i, j| (i * 100 + j) as f64);
        assert_eq!(a, b);
    }

    #[test]
    fn uneven_sizes_are_supported() {
        let g = test_matrix(7, 5);
        let (rp, cp) = (2, 2);
        let pieces: Vec<Vec<Matrix>> = (0..rp)
            .map(|r| {
                (0..cp)
                    .map(|c| DistMatrix::from_global(&g, rp, cp, r, c).local)
                    .collect()
            })
            .collect();
        assert_eq!(pieces[0][0].rows(), 4); // rows 0,2,4,6
        assert_eq!(pieces[1][0].rows(), 3); // rows 1,3,5
        let re = DistMatrix::assemble(7, 5, rp, cp, &pieces);
        assert_eq!(re, g);
    }
}
