//! Cyclic distribution index arithmetic.
//!
//! A dimension of `total` indices distributed cyclically over `procs`
//! processors assigns global index `g` to processor `g % procs` as local
//! index `g / procs`. The paper chooses cyclic (§II-C/D) because the leading
//! and trailing halves of a dimension — the submatrices the CFR3D recursion
//! works on — are then themselves cyclically distributed over all processors
//! with contiguous local index ranges.

/// Processor owning global index `g`.
#[inline]
pub fn owner_of_global(g: usize, procs: usize) -> usize {
    g % procs
}

/// Local index of global index `g` on its owner.
#[inline]
pub fn global_to_local(g: usize, procs: usize) -> usize {
    g / procs
}

/// Global index of local index `l` on processor `p`.
#[inline]
pub fn local_to_global(l: usize, p: usize, procs: usize) -> usize {
    l * procs + p
}

/// Number of local indices processor `p` holds out of `total`.
#[inline]
pub fn local_count(total: usize, p: usize, procs: usize) -> usize {
    (total + procs - 1 - p) / procs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let procs = 4;
        for g in 0..23 {
            let p = owner_of_global(g, procs);
            let l = global_to_local(g, procs);
            assert_eq!(local_to_global(l, p, procs), g);
        }
    }

    #[test]
    fn counts_partition_totals() {
        for total in [0usize, 1, 7, 8, 9, 64] {
            for procs in [1usize, 2, 3, 4, 8] {
                let sum: usize = (0..procs).map(|p| local_count(total, p, procs)).sum();
                assert_eq!(sum, total, "total={total} procs={procs}");
            }
        }
    }

    #[test]
    fn divisible_counts_are_even() {
        for p in 0..8 {
            assert_eq!(local_count(64, p, 8), 8);
        }
    }

    #[test]
    fn leading_half_is_contiguous_prefix() {
        // The CFR3D property: for procs | half, global indices < half map to
        // local indices < half/procs on every processor.
        let procs = 4;
        let n = 32;
        let half = n / 2;
        for g in 0..n {
            let l = global_to_local(g, procs);
            if g < half {
                assert!(l < half / procs);
            } else {
                assert!(l >= half / procs);
            }
        }
    }
}
