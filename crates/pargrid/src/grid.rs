//! Tunable `c × d × c` processor grids and their communicator families.

use simgrid::{Comm, Rank};

/// Why a requested grid shape is invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridError {
    /// A grid dimension was zero.
    ZeroDimension,
    /// `c` or `d` is not a power of two.
    NotPowerOfTwo {
        /// Requested replication-dimension size.
        c: usize,
        /// Requested row-dimension size.
        d: usize,
    },
    /// The tunable grid requires `d ≥ c` so the y dimension splits into
    /// whole `c × c × c` subcubes.
    DSmallerThanC {
        /// Requested replication-dimension size.
        c: usize,
        /// Requested row-dimension size.
        d: usize,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::ZeroDimension => write!(f, "grid dimensions must be positive"),
            GridError::NotPowerOfTwo { c, d } => {
                write!(f, "grid dimensions must be powers of two (got c={c}, d={d})")
            }
            GridError::DSmallerThanC { c, d } => {
                write!(f, "tunable grid requires d >= c (got c={c}, d={d})")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// Shape of the tunable processor grid `Π`: `c × d × c` with `P = c²·d`.
///
/// Constraints (matching the regime of the paper's experiments): `c` and `d`
/// are powers of two and `d ≥ c`, so the `y` dimension divides evenly into
/// `d/c` contiguous groups of size `c`, each of which forms a `c × c × c`
/// subcube with the `x` and `z` dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridShape {
    /// Size of the `x` (column-partitioning) and `z` (replication) dimensions.
    pub c: usize,
    /// Size of the `y` (row-partitioning) dimension.
    pub d: usize,
}

impl GridShape {
    /// Validates and constructs a grid shape.
    pub fn new(c: usize, d: usize) -> Result<GridShape, GridError> {
        if c == 0 || d == 0 {
            return Err(GridError::ZeroDimension);
        }
        if !c.is_power_of_two() || !d.is_power_of_two() {
            return Err(GridError::NotPowerOfTwo { c, d });
        }
        if d < c {
            return Err(GridError::DSmallerThanC { c, d });
        }
        Ok(GridShape { c, d })
    }

    /// The cubic grid `c × c × c` used by 3D-CQR2.
    pub fn cubic(c: usize) -> Result<GridShape, GridError> {
        GridShape::new(c, c)
    }

    /// The 1D grid `1 × P × 1` used by 1D-CQR2.
    pub fn one_d(p: usize) -> Result<GridShape, GridError> {
        GridShape::new(1, p)
    }

    /// Total processor count `P = c²·d`.
    pub fn p(&self) -> usize {
        self.c * self.c * self.d
    }

    /// Number of `c × c × c` subcubes (`d / c`).
    pub fn subcubes(&self) -> usize {
        self.d / self.c
    }

    /// Enumerates all valid `(c, d)` shapes for a given processor count.
    pub fn all_for(p: usize) -> Vec<GridShape> {
        let mut out = Vec::new();
        let mut c = 1;
        while c * c <= p {
            if p.is_multiple_of(c * c) {
                if let Ok(s) = GridShape::new(c, p / (c * c)) {
                    out.push(s);
                }
            }
            c *= 2;
        }
        out
    }

    /// Grid coordinates of a global rank id. The canonical layout is
    /// `rank = x + y·c + z·c·d`.
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.p());
        let x = rank % self.c;
        let y = (rank / self.c) % self.d;
        let z = rank / (self.c * self.d);
        (x, y, z)
    }

    /// Global rank id of grid coordinates `(x, y, z)`.
    pub fn rank_of(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.c && y < self.d && z < self.c);
        x + y * self.c + z * self.c * self.d
    }
}

/// Communicators of a `c × c × c` cube (the whole grid for 3D-CQR2, or one
/// subcube of a tunable grid). Member indices coincide with the varying
/// coordinate: `row.my_index() == x`, `col.my_index() == ŷ`,
/// `depth.my_index() == z`, `slice.my_index() == ŷ·c + x`.
pub struct CubeComms {
    /// Cube edge length.
    pub c: usize,
    /// This rank's cube coordinates `(x, ŷ, z)` (ŷ is the within-cube row
    /// coordinate).
    pub coords: (usize, usize, usize),
    /// `Π[:, ŷ, z]` — varying `x` (size `c`).
    pub row: Comm,
    /// `Π[x, :, z]` — varying `ŷ` (size `c`).
    pub col: Comm,
    /// `Π[x, ŷ, :]` — varying `z` (size `c`).
    pub depth: Comm,
    /// `Π[:, :, z]` — varying `(x, ŷ)` (size `c²`), used by the CFR3D base
    /// case Allgather and the matrix transpose.
    pub slice: Comm,
}

impl CubeComms {
    /// Collectively builds cube communicators. `global_of` maps cube
    /// coordinates to global rank ids (for a subcube this embeds the group
    /// offset); `coords` are this rank's cube coordinates.
    pub fn build(
        rank: &mut Rank,
        c: usize,
        coords: (usize, usize, usize),
        global_of: impl Fn(usize, usize, usize) -> usize,
    ) -> CubeComms {
        let (x, yh, z) = coords;
        let row = Comm::subset(rank, (0..c).map(|i| global_of(i, yh, z)).collect());
        let col = Comm::subset(rank, (0..c).map(|j| global_of(x, j, z)).collect());
        let depth = Comm::subset(rank, (0..c).map(|k| global_of(x, yh, k)).collect());
        let mut slice_members: Vec<usize> = Vec::with_capacity(c * c);
        for j in 0..c {
            for i in 0..c {
                slice_members.push(global_of(i, j, z));
            }
        }
        slice_members.sort_unstable();
        let slice = Comm::subset(rank, slice_members);
        CubeComms {
            c,
            coords,
            row,
            col,
            depth,
            slice,
        }
    }

    /// Index of cube coordinates `(x, ŷ)` within the slice communicator.
    pub fn slice_index(&self, x: usize, yh: usize) -> usize {
        yh * self.c + x
    }
}

/// Communicators of the full tunable `c × d × c` grid (Algorithm 8).
pub struct TunableComms {
    /// Grid shape.
    pub shape: GridShape,
    /// This rank's grid coordinates `(x, y, z)`.
    pub coords: (usize, usize, usize),
    /// `Π[:, y, z]` — varying `x` (size `c`); Algorithm 8 line 1 broadcast.
    pub row: Comm,
    /// `Π[x, y, :]` — varying `z` (size `c`); Algorithm 8 line 5 broadcast.
    pub depth: Comm,
    /// `Π[x, c·⌊y/c⌋ .. c·⌈y/c⌉, z]` — the contiguous y-group of size `c`;
    /// Algorithm 8 line 3 reduction. Identical to the subcube's column
    /// communicator.
    pub ygroup: Comm,
    /// `Π[x, (y mod c)::c, z]` — the strided y-class of size `d/c`;
    /// Algorithm 8 line 4 allreduce across subcubes.
    pub ystride: Comm,
    /// The `c × c × c` subcube this rank belongs to (Algorithm 8 line 6),
    /// with cube coordinates `(x, y mod c, z)`.
    pub subcube: CubeComms,
}

impl TunableComms {
    /// Collectively builds the communicator family. Every rank must call
    /// this at the same program point with the same `shape`.
    pub fn build(rank: &mut Rank, shape: GridShape) -> TunableComms {
        assert_eq!(rank.world_size(), shape.p(), "grid shape must match world size");
        let (x, y, z) = shape.coords(rank.id());
        let (c, _d) = (shape.c, shape.d);
        let group = y / c;
        let row = Comm::subset(rank, (0..c).map(|i| shape.rank_of(i, y, z)).collect());
        let depth = Comm::subset(rank, (0..c).map(|k| shape.rank_of(x, y, k)).collect());
        let ygroup = Comm::subset(rank, (0..c).map(|j| shape.rank_of(x, group * c + j, z)).collect());
        let ystride = Comm::subset(
            rank,
            (0..shape.subcubes())
                .map(|g| shape.rank_of(x, g * c + (y % c), z))
                .collect(),
        );
        let subcube = CubeComms::build(rank, c, (x, y % c, z), |i, j, k| shape.rank_of(i, group * c + j, k));
        TunableComms {
            shape,
            coords: (x, y, z),
            row,
            depth,
            ygroup,
            ystride,
            subcube,
        }
    }

    /// Index of this rank's subcube (its contiguous y-group), in `[0, d/c)`.
    pub fn group(&self) -> usize {
        self.coords.1 / self.shape.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::{run_spmd, SimConfig};

    #[test]
    fn shape_validation() {
        assert!(GridShape::new(2, 8).is_ok());
        assert!(GridShape::new(3, 8).is_err(), "non-power-of-two c");
        assert!(GridShape::new(4, 2).is_err(), "d < c");
        assert!(GridShape::new(0, 2).is_err());
        assert_eq!(GridShape::new(2, 8).unwrap().p(), 32);
        assert_eq!(GridShape::new(2, 8).unwrap().subcubes(), 4);
    }

    #[test]
    fn coords_round_trip() {
        let s = GridShape::new(2, 4).unwrap();
        for r in 0..s.p() {
            let (x, y, z) = s.coords(r);
            assert_eq!(s.rank_of(x, y, z), r);
        }
    }

    #[test]
    fn all_shapes_for_p() {
        let shapes = GridShape::all_for(64);
        // c=1,d=64; c=2,d=16; c=4,d=4.
        assert_eq!(shapes.len(), 3);
        assert!(shapes.contains(&GridShape { c: 1, d: 64 }));
        assert!(shapes.contains(&GridShape { c: 2, d: 16 }));
        assert!(shapes.contains(&GridShape { c: 4, d: 4 }));
    }

    #[test]
    fn tunable_comm_indices_match_coordinates() {
        let shape = GridShape::new(2, 4).unwrap();
        let report = run_spmd(shape.p(), SimConfig::default(), move |rank| {
            let comms = TunableComms::build(rank, shape);
            let (x, y, z) = comms.coords;
            assert_eq!(comms.row.my_index(), x);
            assert_eq!(comms.depth.my_index(), z);
            assert_eq!(comms.ygroup.my_index(), y % shape.c);
            assert_eq!(comms.ystride.my_index(), y / shape.c);
            assert_eq!(comms.subcube.row.my_index(), x);
            assert_eq!(comms.subcube.col.my_index(), y % shape.c);
            assert_eq!(comms.subcube.depth.my_index(), z);
            assert_eq!(
                comms.subcube.slice.my_index(),
                comms.subcube.slice_index(x, y % shape.c)
            );
            (x, y, z)
        });
        // Every coordinate triple appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for c in report.results {
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), shape.p());
    }

    #[test]
    fn subcube_collectives_are_isolated() {
        // Allreduce of the group id over each subcube's slice must stay
        // within the subcube: every member sees group · c².
        let shape = GridShape::new(2, 8).unwrap();
        let report = run_spmd(shape.p(), SimConfig::default(), move |rank| {
            let comms = TunableComms::build(rank, shape);
            let mut buf = vec![comms.group() as f64];
            comms.subcube.slice.allreduce(rank, &mut buf);
            (comms.group(), buf[0])
        });
        for (group, sum) in report.results {
            assert_eq!(sum, (group * shape.c * shape.c) as f64);
        }
    }

    #[test]
    fn one_d_grid_degenerates() {
        let shape = GridShape::one_d(8).unwrap();
        assert_eq!(shape.c, 1);
        assert_eq!(shape.subcubes(), 8);
        let report = run_spmd(8, SimConfig::default(), move |rank| {
            let comms = TunableComms::build(rank, shape);
            // Row, depth, ygroup are singletons; ystride spans everyone.
            assert_eq!(comms.row.size(), 1);
            assert_eq!(comms.depth.size(), 1);
            assert_eq!(comms.ygroup.size(), 1);
            assert_eq!(comms.ystride.size(), 8);
            comms.coords.1
        });
        assert_eq!(report.results, (0..8).collect::<Vec<_>>());
    }
}
