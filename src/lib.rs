//! # ca-cqr2 — Communication-Avoiding CholeskyQR2 for Rectangular Matrices
//!
//! Umbrella crate for the reproduction of Hutter & Solomonik,
//! *"Communication-avoiding CholeskyQR2 for rectangular matrices"*
//! (IPDPS 2019). It re-exports the workspace crates:
//!
//! * [`dense`] — sequential dense linear algebra kernels (the BLAS/LAPACK
//!   substrate).
//! * [`simgrid`] — a deterministic SPMD message-passing runtime with α-β-γ
//!   cost accounting (the MPI substitute).
//! * [`pargrid`] — tunable `c × d × c` processor grids and cyclic
//!   distributions.
//! * [`cacqr`] — the paper's algorithms: MM3D, CFR3D, 1D-/3D-/CA-CQR2.
//! * [`baseline`] — the ScaLAPACK-`PGEQRF`-like 2D Householder QR baseline.
//! * [`costmodel`] — closed-form α-β-γ cost recurrences (paper Tables I–VI).
//!
//! See `examples/quickstart.rs` for a five-minute tour, and `DESIGN.md` /
//! `EXPERIMENTS.md` for the system inventory and experiment index.

pub use baseline;
pub use cacqr;
pub use costmodel;
pub use dense;
pub use pargrid;
pub use simgrid;
