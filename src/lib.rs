//! # ca-cqr2 — Communication-Avoiding CholeskyQR2 for Rectangular Matrices
//!
//! Umbrella crate for the reproduction of Hutter & Solomonik,
//! *"Communication-avoiding CholeskyQR2 for rectangular matrices"*
//! (IPDPS 2019).
//!
//! ## The front door: [`QrPlan`]
//!
//! Every QR variant in the workspace — 1D-CQR2, CA-CQR2, shifted CA-CQR3,
//! and the ScaLAPACK-`PGEQRF`-like baseline — runs through one typed,
//! validated facade with a plan/execute split: build a [`QrPlan`] once,
//! then [`factor`](QrPlan::factor) any number of same-shape matrices, each
//! returning a unified [`QrReport`] (global `Q`/`R`, simulated time,
//! per-rank cost ledgers, numerical diagnostics).
//!
//! ```
//! use ca_cqr2::{Algorithm, QrPlan};
//! use ca_cqr2::pargrid::GridShape;
//! use ca_cqr2::simgrid::Machine;
//!
//! let a = ca_cqr2::dense::random::well_conditioned(64, 16, 1);
//! let plan = QrPlan::new(64, 16)
//!     .algorithm(Algorithm::CaCqr2)
//!     .grid(GridShape::new(2, 4)?)
//!     .machine(Machine::stampede2(64))
//!     .build()?;
//! let report = plan.factor(&a)?;
//! assert!(report.orthogonality_error < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See [`cacqr::driver`] for the full plan/execute story and the layering
//! guide (facade vs expert vs SPMD layer).
//!
//! ## Batch serving: [`QrService`]
//!
//! For throughput workloads — many matrices, many submitting threads — the
//! [`QrService`] engine sits on top of the facade: it caches plans per
//! [`JobSpec`] (repeat shapes never revalidate), factors jobs concurrently
//! on a bounded-queue worker pool, and splits the `CACQR_THREADS` budget
//! with the block-level kernels so the two layers of parallelism never
//! oversubscribe the cores. See [`cacqr::service`] and
//! `examples/batch_service.rs`.
//!
//! ## Streaming updates: [`StreamingQr`]
//!
//! For row sets that change over time, [`QrPlan::stream`] opens a live
//! factor that absorbs rank-k row appends and downdates in `O(kn² + n³)` —
//! independent of how many rows are already folded in — with a tracked
//! drift bound that auto-triggers a full CholeskyQR2 refresh through the
//! owning plan. The same engine serves streaming traffic through
//! [`QrService`] stream jobs (`stream_open` / `append_rows` /
//! `downdate_rows` / `snapshot`). See [`cacqr::stream`] and
//! `examples/online_lsq.rs`.
//!
//! ## Robustness: escalation, deadlines, fault injection
//!
//! Breakdown on ill-conditioned input is a normal event for the CQR2
//! family (it squares κ before the Cholesky). An enabled [`RetryPolicy`]
//! escalates failed factorizations up a stability ladder (CQR2 → shifted
//! CQR3 → Householder) and records the walk in a [`QrReport::escalation`]
//! chain; [`SubmitOptions`] adds per-job deadlines, cancellation, and
//! load-shedding admission control to the service; and `dense::fault`
//! provides the deterministic `CACQR_FAULTS` chaos-injection layer that
//! `tests/chaos.rs` drives in CI. See the README's "Robustness" section
//! for the error taxonomy and contracts.
//!
//! ## The workspace crates
//!
//! * [`dense`] — sequential dense linear algebra kernels (the BLAS/LAPACK
//!   substrate) with the pluggable `Backend` layer.
//! * [`simgrid`] — a deterministic SPMD message-passing runtime with α-β-γ
//!   cost accounting (the MPI substitute).
//! * [`pargrid`] — tunable `c × d × c` processor grids and cyclic
//!   distributions.
//! * [`cacqr`] — the paper's algorithms (MM3D, CFR3D, 1D-/3D-/CA-CQR2) and
//!   the [`QrPlan`] driver.
//! * [`baseline`] — the ScaLAPACK-`PGEQRF`-like 2D Householder QR baseline.
//! * [`costmodel`] — closed-form α-β-γ cost recurrences (paper Tables I–VI).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use baseline;
pub use cacqr;
pub use costmodel;
pub use dense;
pub use pargrid;
pub use simgrid;

pub use cacqr::driver::{
    Algorithm, EscalationAttempt, EscalationReport, PlanError, QrPlan, QrPlanBuilder, QrReport, RetryPolicy,
};
pub use cacqr::service::{
    JobHandle, JobInput, JobSpec, LatencySummary, QrService, QrServiceBuilder, ServiceError, ServiceStats,
    StreamHandle, StreamOp, StreamOutcome, SubmitOptions,
};
pub use cacqr::stream::{StreamSnapshot, StreamStatus, StreamingQr};
pub use cacqr::tuner::{ProfileEntry, Tuner, TunerError, TunerReport, TuningProfile};
